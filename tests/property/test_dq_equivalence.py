"""Property-based end-to-end test: DQ ≡ BAQ on random dirty datasets.

The paper's central correctness claim (§5, §6.1): for any query, the
Dedupe Query over dirty data returns the same deduplicated grouped
entities as the Batch Approach.  We generate random small dirty people
datasets and random selections and check exact result equality with
meta-blocking off (same candidate pairs ⇒ provable equality) across all
execution strategies.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import QueryEREngine
from repro.core.planner import ExecutionMode
from repro.datagen import generate_people
from repro.er.meta_blocking import MetaBlockingConfig


def engine_for(table):
    engine = QueryEREngine(sample_stats=False, meta_blocking=MetaBlockingConfig.none())
    engine.register(table)
    return engine


WHERE_TEMPLATES = [
    "state = 'nt'",
    "state IN ('nsw', 'vic')",
    "MOD(id, {mod}) < 1",
    "id <= {bound}",
    "surname LIKE '{prefix}%'",
]


@st.composite
def scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=40, max_value=120))
    template = draw(st.sampled_from(WHERE_TEMPLATES))
    where = template.format(
        mod=draw(st.integers(min_value=2, max_value=9)),
        bound=draw(st.integers(min_value=5, max_value=100)),
        prefix=draw(st.sampled_from("abcdgjmsw")),
    )
    return seed, size, where


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_dq_equals_baq_for_random_data_and_queries(scenario):
    seed, size, where = scenario
    table, _ = generate_people(size, seed=seed)
    sql = f"SELECT DEDUP id, given_name, surname, state FROM PPL WHERE {where}"
    baseline = engine_for(table).execute(sql, ExecutionMode.BATCH).sorted_rows()
    for mode in (ExecutionMode.AES, ExecutionMode.NES, ExecutionMode.NAIVE_SCAN):
        assert engine_for(table).execute(sql, mode).sorted_rows() == baseline


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_progressive_queries_agree_with_fresh_engine(seed):
    """Queries answered from a warm Link Index equal cold-engine answers."""
    table, _ = generate_people(80, seed=seed)
    warm = engine_for(table)
    warm.execute("SELECT DEDUP id FROM PPL WHERE state = 'nsw'")
    warm_result = warm.execute("SELECT DEDUP id, surname FROM PPL WHERE state IN ('nsw', 'vic')")
    cold_result = engine_for(table).execute(
        "SELECT DEDUP id, surname FROM PPL WHERE state IN ('nsw', 'vic')"
    )
    assert warm_result.sorted_rows() == cold_result.sorted_rows()
