"""Property test: a reader racing ``INSERT INTO`` sees whole epochs only.

The serving layer's snapshot contract (see :mod:`repro.serving.service`):
every answer is stamped with the epoch map it executed under, and for
any interleaving of concurrent readers with an insert, each answer is
byte-identical to what a *fresh* single-caller engine returns for the
stamped epoch's table state — the pre-insert answer or the post-insert
answer, never a torn in-between.

Meta-blocking is off so equality is provable (identical indices ⇒
identical candidate pairs, deterministic matcher) — the same convention
as ``test_incremental_equivalence``.
"""

from __future__ import annotations

import json
import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.datagen.people import people_schema
from repro.er.meta_blocking import MetaBlockingConfig
from repro.parallel import ExecutionConfig
from repro.serving import EngineService
from repro.storage.table import Table

BASE_SIZE = 60

QUERIES = [
    "SELECT DEDUP id, given_name, surname FROM PPL WHERE state IN ('nsw', 'vic')",
    "SELECT DEDUP id, surname FROM PPL WHERE state = 'qld'",
    "SELECT DEDUP id, given_name FROM PPL WHERE MOD(id, 2) < 1",
]


def _engine(rows):
    engine = QueryEREngine(
        sample_stats=False,
        meta_blocking=MetaBlockingConfig.none(),
        execution=ExecutionConfig.serial(),
    )
    engine.register(Table("PPL", people_schema(), rows))
    return engine


def canonical(rows):
    return json.dumps(sorted([list(map(str, row)) for row in rows]))


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    insert_count=st.integers(min_value=1, max_value=5),
    query_index=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    readers=st.integers(min_value=2, max_value=3),
)
def test_reader_racing_insert_sees_whole_epochs(seed, insert_count, query_index, readers):
    table, _ = generate_people(BASE_SIZE + insert_count, seed=seed, name="PPL")
    values = [row.values for row in table]
    base, extra = values[:BASE_SIZE], values[BASE_SIZE:]
    sql = QUERIES[query_index]

    # Fresh-engine references for both epochs of the served table.
    expected = {1: canonical(_engine(base).execute(sql).rows)}
    post_engine = _engine(base)
    post_engine.insert("PPL", extra)
    expected[2] = canonical(post_engine.execute(sql).rows)

    service = EngineService(_engine(base), max_inflight=readers + 2, cache_size=32)
    observations = []
    failures = []
    inserted = threading.Event()

    def reader():
        try:
            last = None
            # Keep reading until the insert has landed, then one tail read.
            # Cache hits bypass the engine gate, so spinning here cannot
            # deadlock the writer; consecutive identical answers are
            # collapsed to keep the observation log small.
            while True:
                done_before_query = inserted.is_set()
                served = service.query(sql)
                observation = (served.epochs["ppl"], canonical(served.rows))
                if observation != last:
                    observations.append(observation)
                    last = observation
                if done_before_query:
                    break
        except Exception as error:  # pragma: no cover - failure path
            failures.append(error)

    threads = [threading.Thread(target=reader) for _ in range(readers)]
    for thread in threads:
        thread.start()
    try:
        service.insert_rows("PPL", extra)
    finally:
        inserted.set()
    for thread in threads:
        thread.join()

    # Quiescent read: with the race over, the answer must be epoch 2's.
    tail = service.query(sql)
    observations.append((tail.epochs["ppl"], canonical(tail.rows)))

    assert not failures
    assert observations
    seen_epochs = {epoch for epoch, _ in observations}
    assert seen_epochs <= {1, 2}, f"unknown epoch stamped: {seen_epochs}"
    # The quiescent tail read ran after the insert landed.
    assert 2 in seen_epochs
    for epoch, rows in observations:
        assert rows == expected[epoch], (
            f"answer at epoch {epoch} is not that epoch's fresh-engine answer"
        )
