"""Property-based tests for union-find, linksets and value merging."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.result import merge_values
from repro.er.clustering import UnionFind, connected_components
from repro.er.linkset import LinkSet, canonical_pair

elements = st.integers(min_value=0, max_value=30)
pairs = st.lists(st.tuples(elements, elements), max_size=40)


class TestUnionFindProperties:
    @given(pairs)
    def test_groups_partition_the_universe(self, edge_list):
        uf = UnionFind()
        for a, b in edge_list:
            uf.union(a, b)
        groups = uf.groups()
        seen = [e for group in groups for e in group]
        assert len(seen) == len(set(seen)) == len(uf)

    @given(pairs)
    def test_connectivity_matches_graph_reachability(self, edge_list):
        uf = UnionFind()
        for a, b in edge_list:
            uf.union(a, b)
        # BFS reachability over the same edges must agree with find().
        adjacency = {}
        for a, b in edge_list:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        for start in adjacency:
            frontier, seen = [start], {start}
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            for other in seen:
                assert uf.connected(start, other)

    @given(pairs)
    def test_union_order_does_not_change_groups(self, edge_list):
        forward = UnionFind()
        for a, b in edge_list:
            forward.union(a, b)
        backward = UnionFind()
        for a, b in reversed(edge_list):
            backward.union(b, a)
        normalize = lambda groups: sorted(tuple(sorted(g)) for g in groups)
        assert normalize(forward.groups()) == normalize(backward.groups())

    @given(pairs, st.lists(elements, max_size=10))
    def test_connected_components_include_isolated_nodes(self, edge_list, isolated):
        comps = connected_components(edge_list, nodes=isolated)
        covered = set().union(*comps) if comps else set()
        assert set(isolated) <= covered


class TestLinkSetProperties:
    @given(pairs)
    def test_adjacency_is_symmetric(self, edge_list):
        links = LinkSet(p for p in edge_list if p[0] != p[1])
        for entity in links.entities():
            for dup in links.duplicates_of(entity):
                assert entity in links.duplicates_of(dup)

    @given(pairs)
    def test_cluster_of_is_idempotent(self, edge_list):
        links = LinkSet(p for p in edge_list if p[0] != p[1])
        for entity in list(links.entities())[:5]:
            cluster = links.cluster_of(entity)
            for member in cluster:
                assert links.cluster_of(member) == cluster

    @given(pairs)
    def test_length_counts_canonical_pairs(self, edge_list):
        valid = [p for p in edge_list if p[0] != p[1]]
        links = LinkSet(valid)
        assert len(links) == len({canonical_pair(*p) for p in valid})


class TestMergeValuesProperties:
    values = st.lists(st.one_of(st.none(), st.text(max_size=8)), max_size=8)

    @given(values)
    def test_order_invariance(self, vals):
        assert merge_values(vals) == merge_values(list(reversed(vals)))

    @given(values)
    def test_idempotence_on_duplicated_input(self, vals):
        assert merge_values(vals) == merge_values(vals + vals)

    @given(values)
    def test_null_only_when_all_null(self, vals):
        result = merge_values(vals)
        has_value = any(v is not None for v in vals)
        assert (result is None) == (not has_value)

    @given(st.text(min_size=1, max_size=8))
    def test_singleton_unchanged(self, value):
        assert merge_values([value]) == value
