"""Property-based tests for the similarity functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.er.similarity import (
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
)

text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF), max_size=30)
short_text = st.text(alphabet="abcdefg .", max_size=12)


class TestLevenshteinProperties:
    @given(text, text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(text, text)
    def test_bounded_by_longer_string(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(text, text)
    def test_lower_bound_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @settings(max_examples=50)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(text, text)
    def test_normalized_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestJaroProperties:
    @given(text, text)
    def test_symmetry(self, a, b):
        assert jaro(a, b) == jaro(b, a)

    @given(text, text)
    def test_unit_interval(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(text)
    def test_identity_is_one(self, a):
        assert jaro(a, a) == 1.0

    @given(text, text)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(text, text)
    def test_winkler_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-12


class TestJaccardProperties:
    sets = st.frozensets(st.integers(min_value=0, max_value=20), max_size=10)

    @given(sets, sets)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(sets, sets)
    def test_unit_interval(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(sets)
    def test_identity(self, a):
        assert jaccard(a, a) == 1.0

    @given(sets, sets)
    def test_subset_monotonicity(self, a, b):
        union = a | b
        if union:
            assert jaccard(a, union) >= jaccard(a, b) - 1e-12
