"""Property: the optimizer is a pure plan selector — answers never change.

The optimizer's contract (``repro.optimizer``) is that cost-based join
reordering and DEDUP placement only change *how* an answer is computed:
with the identity gate satisfied (meta-blocking off) every optimized
plan returns bit-identical rows to the seed heuristic plan, and with
the gate failing (the default meta-blocking configuration) the
heuristic plan runs unchanged.  These tests pin that contract across a
fixed matrix of datasets × query shapes (2-way, 3-way, deliberately
bad FROM order) × workers ∈ {1, 2}, including across an ``INSERT
INTO`` boundary — the one place a stale cached plan could go quietly
wrong.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_organizations, generate_people, generate_projects
from repro.er.meta_blocking import MetaBlockingConfig

WORKER_COUNTS = (1, 2)

QUERIES = {
    "two-way": (
        "SELECT DEDUP PPL.surname, OAO.name "
        "FROM PPL JOIN OAO ON PPL.organisation = OAO.name "
        "WHERE PPL.state IN ('nt', 'act')"
    ),
    "three-way": (
        "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
        "FROM OAP "
        "JOIN OAO ON OAP.organisation = OAO.name "
        "JOIN PPL ON PPL.organisation = OAO.name "
        "WHERE OAP.programme = 'fp7'"
    ),
    # The big unfiltered table first: the shape the optimizer rewrites.
    "bad-order": (
        "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
        "FROM PPL "
        "JOIN OAO ON PPL.organisation = OAO.name "
        "JOIN OAP ON OAP.organisation = OAO.name "
        "WHERE OAP.programme = 'fp7'"
    ),
    "select-star": "SELECT DEDUP * FROM OAO JOIN OAP ON OAP.organisation = OAO.name",
}

DATASETS = {
    "small": (40, 80, 50, 71),
    "joined": (60, 120, 80, 72),
}


def _tables(spec):
    orgs_n, people_n, projects_n, seed = spec
    orgs, _ = generate_organizations(orgs_n, seed=seed)
    names = [row["name"] for row in orgs]
    people, _ = generate_people(people_n, organisations=names[: orgs_n // 2], seed=seed + 1)
    projects, _ = generate_projects(projects_n, organisations=names, seed=seed + 2)
    return people, orgs, projects


def _engine(tables, optimizer, workers, meta_blocking=None):
    engine = QueryEREngine(
        meta_blocking=meta_blocking or MetaBlockingConfig.none(),
        optimizer=optimizer,
        execution=workers,
    )
    for table in tables:
        engine.register(table)
    return engine


def canonical(rows):
    return json.dumps(sorted([list(map(str, row)) for row in rows]))


@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize("qid", sorted(QUERIES))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_optimizer_preserves_answers(dataset, qid, workers):
    tables = _tables(DATASETS[dataset])
    sql = QUERIES[qid]
    heuristic = _engine(tables, optimizer=False, workers=workers).execute(sql)
    optimized = _engine(tables, optimizer=True, workers=workers).execute(sql)
    assert canonical(optimized.rows) == canonical(heuristic.rows)
    assert optimized.columns == heuristic.columns


@pytest.mark.parametrize("qid", ["two-way", "bad-order"])
def test_optimizer_preserves_answers_across_insert(qid):
    sql = QUERIES[qid]
    insert = (
        "INSERT INTO PPL (id, given_name, surname, state, organisation) VALUES "
        "(88001, 'Nova', 'Quenton', 'nt', 'fresh employer one'), "
        "(88002, 'Nova', 'Quentin', 'nt', 'fresh employer one')"
    )
    engines = [
        _engine(_tables(DATASETS["small"]), optimizer=flag, workers=1)
        for flag in (False, True)
    ]
    for engine in engines:
        engine.execute(sql)  # populate caches at the pre-insert epoch
        engine.execute(insert)
    answers = [canonical(engine.execute(sql).rows) for engine in engines]
    assert answers[0] == answers[1]


def test_default_meta_blocking_falls_back_to_heuristic_identically():
    tables = _tables(DATASETS["small"])
    sql = QUERIES["bad-order"]
    heuristic = _engine(
        tables, optimizer=False, workers=1, meta_blocking=MetaBlockingConfig.all()
    ).execute(sql)
    gated = _engine(
        tables, optimizer=True, workers=1, meta_blocking=MetaBlockingConfig.all()
    ).execute(sql)
    assert canonical(gated.rows) == canonical(heuristic.rows)
    assert gated.comparisons == heuristic.comparisons
