"""Chaos property suite: random fault plans, exact answers or clean errors.

The resilience contract, stated as a property: under ANY deterministic
fault plan drawn over the engine's fault sites, a DEDUP query either

* answers **bit-identically** to the fault-free baseline (recovery was
  transparent: retried partitions, serial fallbacks, packed→dict
  degradation), or
* raises a **typed** error (:class:`TaskExecutionError`,
  :class:`IngestError` — never a half-written result, never a raw
  internal traceback from a partially mutated engine),

and in *both* cases the engine keeps serving exact answers once the
plan is disarmed — faults must not corrupt any state that outlives
them.  Each seed replays deterministically: a failing seed is a
reproducible bug report.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.datagen.people import people_schema
from repro.incremental import IngestError
from repro.parallel import ExecutionConfig
from repro.parallel.pool import TaskExecutionError
from repro.resilience import DEGRADATION, FaultError, FaultPlan, clear_plan, install_plan
from repro.storage.table import Table

#: Errors the contract allows a faulted operation to surface.  A raw
#: FaultError is legal only from sites whose stage is atomic on its own
#: (storage staging); recovery layers otherwise wrap or absorb it.
TYPED_ERRORS = (TaskExecutionError, IngestError, FaultError)

#: The sites chaos draws from, with the kind each one must use.
CHAOS_SITES = [
    ("pool.task", "raise"),
    ("pool.task_hang", "hang"),
    ("packed.derive", "raise"),
    ("dml.after_append", "raise"),
    ("dml.index_delta", "raise"),
    ("dml.before_commit", "raise"),
]

SQL = "SELECT DEDUP id, surname, state FROM PPL WHERE state IN ('nsw', 'vic')"

#: CI's chaos matrix shifts the seed window per leg: offset N explores
#: seeds [100*N, 100*N + 10).  Any failing seed replays locally with
#: ``REPRO_CHAOS_SEED_OFFSET`` set to the failing leg's value.
SEED_OFFSET = 100 * int(os.environ.get("REPRO_CHAOS_SEED_OFFSET", "0") or 0)


def chaos_config() -> ExecutionConfig:
    """Thresholds forced to zero so tiny data still engages the pool;
    a tight task timeout so injected hangs exercise containment."""
    return ExecutionConfig(
        workers=2,
        backend="thread",
        min_parallel_pairs=1,
        min_parallel_comparisons=1,
        task_retries=2,
        task_timeout_s=0.15,
    )


def build_engine(rows) -> QueryEREngine:
    engine = QueryEREngine(execution=chaos_config())
    engine.register(Table("PPL", people_schema(), rows))
    return engine


def answer(engine: QueryEREngine):
    return sorted(map(tuple, engine.execute(SQL).rows), key=repr)


def random_plan(seed: int) -> FaultPlan:
    """A seeded random plan over 1–3 chaos sites."""
    rng = random.Random(seed)
    plan = FaultPlan(seed=seed)
    for site, kind in rng.sample(CHAOS_SITES, k=rng.randint(1, 3)):
        plan.add(
            site,
            kind=kind,
            times=rng.choice([1, 2, 3, None]),
            after=rng.randint(0, 2),
            probability=rng.choice([1.0, 1.0, 0.5]),
            delay=0.4,  # hang kind: comfortably past the task timeout
        )
    return plan


@pytest.fixture(autouse=True)
def _isolated():
    clear_plan()
    DEGRADATION.clear()
    yield
    clear_plan()
    DEGRADATION.clear()


@pytest.fixture(scope="module")
def chaos_rows():
    table, _ = generate_people(130, seed=47, name="PPL")
    rows = [tuple(row.values) for row in table]
    return rows[:120], rows[120:]


@pytest.fixture(scope="module")
def baselines(chaos_rows):
    """Fault-free answers for both table states a run can end in."""
    base, extra = chaos_rows
    return {
        "base": answer(build_engine(base)),
        "grown": answer(build_engine(base + extra)),
    }


@pytest.mark.parametrize("seed", [SEED_OFFSET + i for i in range(10)])
def test_chaos_plan_yields_exact_answer_or_typed_error(seed, chaos_rows, baselines):
    base, extra = chaos_rows
    engine = build_engine(base)
    plan = random_plan(seed)
    install_plan(plan)

    # Phase 1 — query under fire: exact or typed, nothing in between.
    try:
        assert answer(engine) == baselines["base"]
    except TYPED_ERRORS:
        pass

    # Phase 2 — ingest under fire: committed entirely or rolled back
    # entirely; the surviving table state decides the final baseline.
    expected = baselines["base"]
    try:
        result = engine.insert("PPL", extra)
        assert result.inserted == len(extra)
        expected = baselines["grown"]
    except TYPED_ERRORS:
        assert len(engine.index_of("PPL").table) == len(base)

    # Phase 3 — disarm: the engine must serve exact answers again, from
    # exactly the state the faulted run left behind.
    clear_plan()
    assert answer(engine) == expected


@pytest.mark.parametrize("seed", [3, 11])
def test_chaos_recoveries_are_observable(seed, chaos_rows):
    """Whenever a plan actually fired mid-pipeline, either the result
    raised typed or some layer logged a degradation — recoveries are
    never silent *and* invisible."""
    base, _ = chaos_rows
    engine = build_engine(base)
    plan = FaultPlan(seed=seed).add("pool.task", times=2)
    install_plan(plan)
    try:
        engine.execute(SQL)
    except TYPED_ERRORS:
        pass
    if plan.fired_count():
        assert DEGRADATION.count("parallel") > 0
