"""Unit tests for repro.storage.table."""

import pytest

from repro.storage.schema import Column, ColumnType, Schema, SchemaError
from repro.storage.table import Row, Table


@pytest.fixture
def table():
    return Table(
        "T",
        Schema.of("id", "name", "city"),
        [("1", "ann", "berlin"), ("2", "bob", None), ("3", "cyd", "athens")],
    )


class TestRow:
    def test_access_by_position_and_name(self, table):
        row = table[0]
        assert row[0] == "1"
        assert row["name"] == "ann"
        assert row["NAME"] == "ann"

    def test_id_property(self, table):
        assert table[1].id == "2"

    def test_as_dict(self, table):
        assert table[0].as_dict() == {"id": "1", "name": "ann", "city": "berlin"}

    def test_get_with_default(self, table):
        assert table[0].get("missing", "dflt") == "dflt"

    def test_replace_returns_new_row(self, table):
        row = table[0]
        other = row.replace(city="paris")
        assert other["city"] == "paris"
        assert row["city"] == "berlin"

    def test_equality_and_hash(self, table):
        schema = table.schema
        a = Row(schema, ("9", "x", "y"))
        b = Row(schema, ("9", "x", "y"))
        assert a == b
        assert hash(a) == hash(b)


class TestTable:
    def test_len_and_iter(self, table):
        assert len(table) == 3
        assert [r.id for r in table] == ["1", "2", "3"]

    def test_by_id(self, table):
        assert table.by_id("2")["name"] == "bob"

    def test_by_id_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.by_id("99")

    def test_get_by_id_returns_none(self, table):
        assert table.get_by_id("99") is None

    def test_contains(self, table):
        assert "1" in table
        assert "xx" not in table

    def test_duplicate_id_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", Schema.of("id"), [("1",), ("1",)])

    def test_null_id_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", Schema.of("id", "x"), [(None, "a")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Table("", Schema.of("id"))

    def test_coercion_on_construction(self):
        schema = Schema([Column("id", ColumnType.INTEGER), Column("v", ColumnType.FLOAT)])
        t = Table("N", schema, [("1", "2.5")])
        assert t[0].values == (1, 2.5)

    def test_select(self, table):
        sub = table.select(lambda r: r["city"] is not None)
        assert [r.id for r in sub] == ["1", "3"]

    def test_from_rows_deduplicates_ids(self, table):
        rebuilt = table.from_rows([table[0], table[0], table[2]])
        assert [r.id for r in rebuilt] == ["1", "3"]

    def test_sample_is_deterministic(self, table):
        a = table.sample(0.5, seed=3)
        b = table.sample(0.5, seed=3)
        assert [r.id for r in a] == [r.id for r in b]

    def test_sample_never_empty(self, table):
        assert len(table.sample(1e-9, seed=1)) >= 1

    def test_sample_fraction_validation(self, table):
        with pytest.raises(ValueError):
            table.sample(0.0)
        with pytest.raises(ValueError):
            table.sample(1.5)

    def test_ids_property(self, table):
        assert table.ids == ["1", "2", "3"]
