"""Unit tests for the engine facade and dedupe-query planner."""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import DedupPlanningError, DedupQueryPlanner, ExecutionMode
from repro.sql.parser import parse
from repro.storage.schema import Schema
from repro.storage.table import Table


def left_table():
    return Table(
        "L",
        Schema.of("id", "name", "kind", "ref"),
        [
            ("l1", "john smith", "alpha", "k1"),
            ("l2", "john smyth", "alpha", "k1"),
            ("l3", "mary brown", "bravo", "k2"),
            ("l4", "kate jones", "bravo", "k3"),
        ],
    )


def right_table():
    return Table(
        "R",
        Schema.of("id", "key", "label"),
        [("r1", "k1", "first"), ("r2", "k2", "second"), ("r3", "k9", "unjoined")],
    )


@pytest.fixture
def engine():
    e = QueryEREngine(sample_stats=False)
    e.register(left_table())
    e.register(right_table())
    return e


class TestEngineBasics:
    def test_non_dedup_query_uses_relational_path(self, engine):
        result = engine.execute("SELECT name FROM L WHERE kind = 'alpha'")
        assert sorted(result.column("name")) == ["john smith", "john smyth"]
        assert result.comparisons == 0

    def test_dedup_query_counts_comparisons(self, engine):
        result = engine.execute("SELECT DEDUP id, name FROM L WHERE kind = 'alpha'")
        assert result.comparisons > 0

    def test_dedup_groups_duplicates(self, engine):
        result = engine.execute("SELECT DEDUP name FROM L WHERE name = 'john smith'")
        assert len(result) == 1
        assert "john smith" in result.rows[0][0]
        assert "john smyth" in result.rows[0][0]

    def test_register_duplicate_name_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.register(left_table())

    def test_index_of_unknown_table(self, engine):
        with pytest.raises(KeyError):
            engine.index_of("nope")

    def test_mode_accepts_strings(self, engine):
        result = engine.execute("SELECT DEDUP id FROM L", "nes")
        assert len(result) >= 1

    def test_reset_link_indexes(self, engine):
        engine.execute("SELECT DEDUP id FROM L")
        assert engine.index_of("L").link_index.resolved_count > 0
        engine.reset_link_indexes()
        assert engine.index_of("L").link_index.resolved_count == 0

    def test_statistics_lazily_computed(self, engine):
        stats = engine.statistics_of("L")
        assert stats.sample_size > 0

    def test_join_percentage_cached(self, engine):
        first = engine.join_percentage("L", "R", "ref", "key")
        second = engine.join_percentage("L", "R", "ref", "key")
        assert first == second
        assert 0.0 < first[0] <= 1.0


class TestExplainAndPlan:
    def test_explain_relational(self, engine):
        text = engine.explain("SELECT name FROM L")
        assert "TableScan" in text

    def test_explain_dedup_sp(self, engine):
        text = engine.explain("SELECT DEDUP name FROM L WHERE kind = 'alpha'")
        assert "Deduplicate" in text and "GroupEntities" in text

    def test_explain_dedup_join_shows_dirty_side(self, engine):
        text = engine.explain(
            "SELECT DEDUP L.name, R.label FROM L JOIN R ON L.ref = R.key"
        )
        assert "Join" in text

    def test_plan_for_estimates_both_branches(self, engine):
        plan = engine.plan_for(
            "SELECT DEDUP L.name, R.label FROM L JOIN R ON L.ref = R.key WHERE L.kind = 'alpha'"
        )
        assert set(plan.estimates) == {"L", "R"}
        assert plan.clean_first in ("L", "R")

    def test_plan_for_requires_dedup(self, engine):
        with pytest.raises(ValueError):
            engine.plan_for("SELECT name FROM L")

    def test_batch_mode_plan_description(self, engine):
        text = engine.explain("SELECT DEDUP name FROM L", ExecutionMode.BATCH)
        assert "BatchDeduplicate" in text


class TestPlannerAnalysis:
    def test_join_step_extraction(self, engine):
        planner = DedupQueryPlanner(engine)
        query = parse("SELECT DEDUP L.name FROM L JOIN R ON L.ref = R.key")
        _, steps, _ = planner.analyze(query)
        (step,) = steps
        assert (step.left_binding, step.left_column) == ("l", "ref")
        assert (step.right_binding, step.right_column) == ("r", "key")

    def test_join_direction_normalized(self, engine):
        planner = DedupQueryPlanner(engine)
        query = parse("SELECT DEDUP L.name FROM L JOIN R ON R.key = L.ref")
        _, steps, _ = planner.analyze(query)
        assert steps[0].right_binding == "r"

    def test_non_equi_join_rejected(self, engine):
        planner = DedupQueryPlanner(engine)
        query = parse("SELECT DEDUP L.name FROM L JOIN R ON L.ref > R.key")
        with pytest.raises(DedupPlanningError):
            planner.analyze(query)

    def test_residual_conjunct_detected(self, engine):
        planner = DedupQueryPlanner(engine)
        query = parse(
            "SELECT DEDUP L.name FROM L JOIN R ON L.ref = R.key WHERE L.name = R.label"
        )
        _, _, residual = planner.analyze(query)
        assert residual is not None

    def test_per_binding_conditions_split(self, engine):
        planner = DedupQueryPlanner(engine)
        query = parse(
            "SELECT DEDUP L.name FROM L JOIN R ON L.ref = R.key "
            "WHERE L.kind = 'alpha' AND R.label = 'first'"
        )
        infos, _, residual = planner.analyze(query)
        assert residual is None
        assert infos[0].condition is not None
        assert infos[1].condition is not None

    def test_computed_projection_rejected_in_dedup(self, engine):
        with pytest.raises(DedupPlanningError):
            engine.execute("SELECT DEDUP id * 2 FROM L")


class TestModes:
    SQL = "SELECT DEDUP id, name FROM L WHERE kind = 'alpha'"

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_all_modes_return_same_groups(self, mode):
        # Exact DQ ≡ BAQ equality is guaranteed when meta-blocking is off
        # (§6.1 correctness argument assumes the same candidate pairs).
        from repro.er.meta_blocking import MetaBlockingConfig

        engine = QueryEREngine(sample_stats=False, meta_blocking=MetaBlockingConfig.none())
        engine.register(left_table())
        engine.register(right_table())
        baseline = engine.execute(self.SQL, ExecutionMode.BATCH).sorted_rows()
        engine.reset_link_indexes()
        assert engine.execute(self.SQL, mode).sorted_rows() == baseline

    def test_order_by_and_limit_in_dedup(self, engine):
        result = engine.execute("SELECT DEDUP id, kind FROM L ORDER BY kind DESC LIMIT 1")
        assert len(result) == 1
        assert result.rows[0][1].startswith("bravo")

    def test_dedup_order_by_sorts_numbers_numerically(self):
        from repro.storage.schema import Column, ColumnType, Schema as S

        table = Table(
            "N",
            S([Column("id", ColumnType.INTEGER), Column("v", ColumnType.INTEGER)]),
            [(1, 9), (2, 10), (3, 2)],
        )
        engine = QueryEREngine(sample_stats=False)
        engine.register(table)
        result = engine.execute("SELECT DEDUP id, v FROM N ORDER BY v")
        assert [row[1] for row in result.rows] == [2, 9, 10]  # not "10" < "2" < "9"


class TestRegisterReplace:
    """Regression: replace=True must purge per-table cached state."""

    def test_replace_purges_join_percentage_cache(self, engine):
        assert engine.join_percentage("L", "R", "ref", "key") == (0.75, 2 / 3)
        engine.register(
            Table("R", Schema.of("id", "key"), [("r1", "k1"), ("r2", "k3")]),
            replace=True,
        )
        # Stale cache would still say (0.75, 2/3) against the dead index.
        assert engine.join_percentage("L", "R", "ref", "key") == (0.75, 1.0)

    def test_replace_purges_memoized_statistics(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(left_table())
        before = engine.statistics_of("L")  # lazily memoized
        replacement = Table("L", Schema.of("id", "name"), [("l1", "solo")])
        engine.register(replacement, replace=True)
        after = engine.statistics_of("L")
        assert after is not before
        assert after.base_rows == 1

    def test_replace_with_sample_stats_rebuilds_statistics(self):
        engine = QueryEREngine(sample_stats=True)
        engine.register(left_table())
        before = engine.statistics_of("L")
        engine.register(Table("L", Schema.of("id", "name"), [("l1", "solo")]), replace=True)
        after = engine.statistics_of("L")
        assert after is not before and after.base_rows == 1
