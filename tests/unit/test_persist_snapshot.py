"""Unit tests for repro.persist: codec, snapshots, checkpoints, faults."""

import json

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.er.meta_blocking import MetaBlockingConfig
from repro.persist import (
    SnapshotError,
    column_from_arrays,
    column_to_arrays,
    read_manifest,
    save_engine,
)
from repro.persist.snapshot import MANIFEST_NAME
from repro.resilience import DEGRADATION, FaultPlan, clear_plan, install_plan
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table

QUERY = "SELECT DEDUP id, given_name, surname FROM PPL WHERE surname LIKE '%an%'"


@pytest.fixture(autouse=True)
def _clean_faults():
    clear_plan()
    DEGRADATION.clear()
    yield
    clear_plan()
    DEGRADATION.clear()


def make_engine(size=120, seed=11, **kwargs):
    kwargs.setdefault("sample_stats", False)
    kwargs.setdefault("meta_blocking", MetaBlockingConfig.none())
    engine = QueryEREngine(**kwargs)
    table, _ = generate_people(size, seed=seed)
    engine.register(table)
    return engine


def extra_row(i):
    return (
        9000 + i, "ann", "hanson", str(i), "oak street", "rome", "2839",
        "vic", "1980-01-01", "45", None, None, None,
    )


class TestColumnarCodec:
    @pytest.mark.parametrize(
        "kind,values",
        [
            (ColumnType.STRING, ["a", "", None, "héllo wörld", "x" * 500]),
            (ColumnType.INTEGER, [0, -5, None, 2**40, 7]),
            (ColumnType.INTEGER, [2**100, None, -(2**80)]),  # overflow fallback
            (ColumnType.FLOAT, [0.0, -1.5, None, 3.14159, 1e300]),
            (ColumnType.BOOLEAN, [True, False, None, True]),
            (ColumnType.STRING, []),
        ],
    )
    def test_round_trip_exact(self, kind, values):
        column = Column("c", kind)
        back = column_from_arrays(column, column_to_arrays(column, values))
        assert back == values
        assert [type(v) for v in back] == [type(v) for v in values]

    def test_empty_string_distinct_from_null(self):
        column = Column("c", ColumnType.STRING)
        back = column_from_arrays(column, column_to_arrays(column, ["", None]))
        assert back == ["", None]


class TestSaveLoad:
    def test_round_trip_is_bit_identical(self, tmp_path):
        engine = make_engine()
        live = engine.execute(QUERY).sorted_rows()
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        assert warm.execute(QUERY).sorted_rows() == live
        assert warm.table_epochs() == engine.table_epochs()

    def test_load_restores_indices_without_rebuild(self, tmp_path):
        engine = make_engine()
        engine.execute(QUERY)  # populate LI + signatures
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        live_index, warm_index = engine.index_of("ppl"), warm.index_of("ppl")
        assert set(warm_index.tbi.keys()) == set(live_index.tbi.keys())
        for key in live_index.tbi.keys():
            assert warm_index.tbi.get(key).entities == live_index.tbi.get(key).entities
        assert warm_index.itbi == live_index.itbi
        assert warm_index.link_index.resolved_count == live_index.link_index.resolved_count
        assert len(warm_index.link_index) == len(live_index.link_index)
        assert warm_index.signature_count == live_index.signature_count
        # Restored signatures use the identical token-id assignment.
        some_id = next(iter(live_index.table.ids))
        assert (
            warm_index.signature_of(some_id).token_ids
            == live_index.signature_of(some_id).token_ids
        )

    def test_statistics_survive_without_resampling(self, tmp_path):
        engine = make_engine(sample_stats=True)
        live = engine.statistics_of("ppl")
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        restored = warm.statistics_of("ppl")
        assert restored.duplication_factor == live.duplication_factor
        assert restored.sample_size == live.sample_size

    def test_manifest_records_format_and_checksums(self, tmp_path):
        engine = make_engine()
        manifest = engine.save(tmp_path)
        on_disk = read_manifest(tmp_path)
        assert on_disk["format"] == manifest["format"]
        entry = on_disk["tables"]["ppl"]
        assert entry["segments"][0]["sha256"]
        assert entry["rows"] == len(engine.catalog.get("ppl"))

    def test_corrupted_segment_is_refused(self, tmp_path):
        engine = make_engine()
        manifest = engine.save(tmp_path)
        segment = tmp_path / manifest["tables"]["ppl"]["segments"][0]["file"]
        raw = bytearray(segment.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        segment.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            QueryEREngine.load(tmp_path)

    def test_missing_manifest_is_refused(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot manifest"):
            QueryEREngine.load(tmp_path)

    def test_unknown_format_is_refused(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other/v9"}))
        with pytest.raises(SnapshotError, match="unsupported snapshot format"):
            read_manifest(tmp_path)

    def test_overrides_take_precedence(self, tmp_path):
        engine = make_engine()
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path, match_threshold=0.9)
        assert warm.match_threshold == 0.9

    def test_multi_table_snapshot(self, tmp_path):
        engine = make_engine()
        other, _ = generate_people(40, seed=5, name="OTH")
        engine.register(other)
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        assert set(warm.table_epochs()) == {"ppl", "oth"}
        assert len(warm.catalog.get("oth")) == 40


class TestCheckpoints:
    def test_committed_insert_appends_delta_segment(self, tmp_path):
        engine = make_engine()
        engine.enable_checkpointing(tmp_path)
        engine.insert("PPL", [extra_row(0)])
        entry = read_manifest(tmp_path)["tables"]["ppl"]
        kinds = [s["kind"] for s in entry["segments"]]
        assert kinds == ["base", "delta"]
        warm = QueryEREngine.load(tmp_path)
        assert warm.table_epochs() == engine.table_epochs()
        assert warm.execute(QUERY).sorted_rows() == engine.execute(QUERY).sorted_rows()

    def test_rolled_back_insert_never_reaches_disk(self, tmp_path):
        engine = make_engine()
        engine.enable_checkpointing(tmp_path)
        before = read_manifest(tmp_path)
        install_plan(FaultPlan.parse("dml.before_commit:times=1"))
        from repro.incremental import IngestError

        with pytest.raises(IngestError):
            engine.insert("PPL", [extra_row(1)])
        clear_plan()
        after = read_manifest(tmp_path)
        assert after["tables"]["ppl"] == before["tables"]["ppl"]
        mgr = engine.checkpointer
        assert mgr.checkpoints_written == 0

    def test_compaction_folds_deltas_into_base(self, tmp_path):
        engine = make_engine()
        engine.enable_checkpointing(tmp_path, delta_threshold=2)
        for i in range(3):
            engine.insert("PPL", [extra_row(i)])
        entry = read_manifest(tmp_path)["tables"]["ppl"]
        assert [s["kind"] for s in entry["segments"]] == ["base"]
        assert engine.checkpointer.compactions == 1
        warm = QueryEREngine.load(tmp_path)
        assert warm.execute(QUERY).sorted_rows() == engine.execute(QUERY).sorted_rows()

    def test_warm_start_skips_base_rewrite(self, tmp_path):
        engine = make_engine()
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        manager = warm.enable_checkpointing(tmp_path)
        assert manager.checkpoints_written == 0  # snapshot already matches

    def test_background_writer_flushes(self, tmp_path):
        engine = make_engine()
        manager = engine.enable_checkpointing(tmp_path, background=True)
        engine.insert("PPL", [extra_row(0)])
        engine.insert("PPL", [extra_row(1)])
        manager.flush()
        warm = QueryEREngine.load(tmp_path)
        assert warm.table_epochs() == engine.table_epochs()
        assert warm.execute(QUERY).sorted_rows() == engine.execute(QUERY).sorted_rows()
        manager.close()

    def test_status_exposes_snapshot_health(self, tmp_path):
        engine = make_engine()
        manager = engine.enable_checkpointing(tmp_path)
        engine.insert("PPL", [extra_row(0)])
        status = manager.status()
        assert status["snapshot_epoch_map"] == engine.table_epochs()
        assert status["delta_segments"] == 1
        assert status["checkpoints_written"] == 1
        assert status["last_checkpoint_age_s"] >= 0


class TestCrashSafety:
    @pytest.mark.parametrize("site", ["persist.write", "persist.rename"])
    def test_failed_checkpoint_keeps_prior_snapshot_loadable(self, tmp_path, site):
        engine = make_engine()
        engine.enable_checkpointing(tmp_path)
        pre_insert = engine.execute(QUERY).sorted_rows()
        install_plan(FaultPlan.parse(f"{site}:times=1"))
        result = engine.insert("PPL", [extra_row(0)])  # insert itself commits
        clear_plan()
        assert result.inserted == 1
        assert engine.checkpointer.checkpoint_failures == 1
        assert DEGRADATION.layer_counts().get("persist")
        warm = QueryEREngine.load(tmp_path)  # prior snapshot, pre-insert
        assert warm.table_epochs()["ppl"] == engine.table_epochs()["ppl"] - 1
        assert warm.execute(QUERY).sorted_rows() == pre_insert

    def test_next_commit_repairs_with_full_base(self, tmp_path):
        engine = make_engine()
        engine.enable_checkpointing(tmp_path)
        install_plan(FaultPlan.parse("persist.write:times=1"))
        engine.insert("PPL", [extra_row(0)])  # checkpoint lost
        clear_plan()
        engine.insert("PPL", [extra_row(1)])  # triggers base re-capture
        warm = QueryEREngine.load(tmp_path)
        assert warm.table_epochs() == engine.table_epochs()
        assert warm.execute(QUERY).sorted_rows() == engine.execute(QUERY).sorted_rows()
        entry = read_manifest(tmp_path)["tables"]["ppl"]
        assert entry["segments"][0]["kind"] == "base"

    def test_save_sweeps_stale_temp_files(self, tmp_path):
        engine = make_engine()
        engine.save(tmp_path)
        stray = tmp_path / "tables" / "ppl" / "junk.npz.tmp-123"
        stray.write_bytes(b"partial")
        engine.save(tmp_path)
        assert not stray.exists()


class TestEngineHooks:
    def test_save_engine_function_matches_method(self, tmp_path):
        engine = make_engine()
        manifest = save_engine(engine, tmp_path)
        assert set(manifest["tables"]) == {"ppl"}

    def test_epoch_map_identical_after_load(self, tmp_path):
        engine = make_engine()
        engine.insert("PPL", [extra_row(0)])
        engine.save(tmp_path)
        assert QueryEREngine.load(tmp_path).table_epochs() == engine.table_epochs()

    def test_join_percentages_restored(self, tmp_path):
        engine = make_engine()
        other, _ = generate_people(40, seed=5, name="OTH")
        engine.register(other)
        live = engine.join_percentage("PPL", "OTH", "surname", "surname")
        engine.save(tmp_path)
        warm = QueryEREngine.load(tmp_path)
        assert warm._join_percentages[("ppl", "oth", "surname", "surname")] == live

    def test_unsnapshotable_blocking_is_refused(self, tmp_path):
        from repro.core.indices import TableIndex
        from repro.er.blocking import TokenBlocking

        class CustomBlocking(TokenBlocking):
            pass

        engine = QueryEREngine(sample_stats=False)
        table = Table("T", Schema.of("id", "name"), [("1", "ann"), ("2", "bob")])
        engine.register(table)
        engine._indices["t"] = TableIndex(table, blocking=CustomBlocking())
        with pytest.raises(SnapshotError, match="not snapshotable"):
            engine.save(tmp_path)
