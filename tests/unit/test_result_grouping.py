"""Unit tests for DedupResult, value merging and Group-Entities."""

from repro.core.group_entities import ClusterResolver, group_joined_rows, group_single
from repro.core.result import DedupResult, GROUP_SEPARATOR, group_cluster, merge_values
from repro.er.linkset import LinkSet
from repro.storage.schema import Schema
from repro.storage.table import Table


def table():
    return Table(
        "T",
        Schema.of("id", "title", "year"),
        [
            ("a", "Entity Resolution", "2008"),
            ("b", "E.R.", "2008"),
            ("c", "Other Paper", None),
            ("d", "Other Paper", "2010"),
        ],
    )


class TestMergeValues:
    def test_single_value(self):
        assert merge_values(["x"]) == "x"

    def test_identical_values_collapse(self):
        assert merge_values(["x", "x"]) == "x"

    def test_distinct_values_concatenated_sorted(self):
        assert merge_values(["b", "a"]) == "a" + GROUP_SEPARATOR + "b"

    def test_nulls_replaced_by_existing(self):
        assert merge_values([None, "x", None]) == "x"

    def test_all_null_stays_null(self):
        assert merge_values([None, None]) is None

    def test_deterministic_under_reordering(self):
        assert merge_values(["x", "y"]) == merge_values(["y", "x"])


class TestDedupResult:
    def test_entity_ids_union(self):
        dr = DedupResult(table(), ["a"], ["b"], LinkSet([("a", "b")]))
        assert dr.entity_ids == {"a", "b"}

    def test_duplicates_never_overlap_query_ids(self):
        dr = DedupResult(table(), ["a", "b"], ["b"], LinkSet())
        assert dr.duplicate_ids == set()

    def test_rows_in_table_order(self):
        dr = DedupResult(table(), ["b", "a"])
        assert [r.id for r in dr.rows()] == ["a", "b"]

    def test_clusters_include_singletons(self):
        dr = DedupResult(table(), ["a", "c"], ["b"], LinkSet([("a", "b")]))
        clusters = dr.clusters()
        assert {"a", "b"} in clusters and {"c"} in clusters

    def test_links_outside_result_ignored_in_clusters(self):
        dr = DedupResult(table(), ["a"], [], LinkSet([("c", "d")]))
        assert dr.clusters() == [{"a"}]


class TestGroupCluster:
    def test_fuses_values(self):
        grouped = group_cluster(table(), ["a", "b"])
        assert grouped["title"] == "E.R." + GROUP_SEPARATOR + "Entity Resolution"
        assert grouped["year"] == "2008"

    def test_null_filled_from_member(self):
        grouped = group_cluster(table(), ["c", "d"])
        assert grouped["year"] == "2010"

    def test_member_ids_sorted(self):
        grouped = group_cluster(table(), ["d", "c"])
        assert grouped.member_ids == ("c", "d")


class TestGroupSingle:
    def test_one_row_per_cluster(self):
        dr = DedupResult(table(), ["a", "c"], ["b"], LinkSet([("a", "b")]))
        groups = group_single(dr)
        assert len(groups) == 2

    def test_grouped_values(self):
        dr = DedupResult(table(), ["a"], ["b"], LinkSet([("a", "b")]))
        (group,) = group_single(dr)
        assert GROUP_SEPARATOR in group["title"]
        assert group["year"] == "2008"


class TestClusterResolver:
    def test_representative_is_canonical(self):
        links = LinkSet([("b", "a"), ("b", "c")])
        resolver = ClusterResolver(links, ["a", "b", "c", "x"])
        assert resolver.representative("c") == resolver.representative("a")
        assert resolver.representative("x") == "x"

    def test_unknown_entity_maps_to_itself(self):
        resolver = ClusterResolver(LinkSet(), [])
        assert resolver.representative("q") == "q"


class TestGroupJoinedRows:
    def test_groups_by_cluster_key(self):
        links = LinkSet([("a", "b")])
        resolver = ClusterResolver(links, ["a", "b"])
        rows = [("a", "x1"), ("b", "x2")]
        grouped = group_joined_rows(rows, [0], [resolver], 2)
        assert len(grouped) == 1
        assert grouped[0][1] == "x1" + GROUP_SEPARATOR + "x2"

    def test_identity_grouping_without_resolver(self):
        rows = [("a", "x"), ("b", "y")]
        grouped = group_joined_rows(rows, [-1], [None], 2)
        assert len(grouped) == 2
