"""Unit tests for the aggregation extension (paper §10 future work)."""

import pytest

from repro.core.engine import QueryEREngine
from repro.sql import ast
from repro.sql.aggregates import (
    Avg,
    CountAll,
    CountValues,
    Extreme,
    Sum,
    aggregate_argument,
    contains_aggregate,
    is_aggregate_call,
    make_accumulator,
    numeric_value,
    run_aggregation,
)
from repro.sql.parser import ParseError, parse
from repro.sql.planner import PlanningError, RelationalPlanner
from repro.sql.executor import execute_plan
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table


@pytest.fixture
def engine():
    table = Table(
        "T",
        Schema(
            [Column("id", ColumnType.INTEGER), Column("kind"), Column("score", ColumnType.FLOAT)]
        ),
        [(1, "a", 10.0), (2, "a", 20.0), (3, "b", 30.0), (4, "b", None), (5, None, 50.0)],
    )
    e = QueryEREngine(sample_stats=False)
    e.register(table)
    return e


class TestParsing:
    def test_count_star(self):
        q = parse("SELECT COUNT(*) FROM t")
        assert isinstance(q.items[0].expr, ast.FunctionCall)
        assert isinstance(q.items[0].expr.args[0], ast.Star)

    def test_group_by(self):
        q = parse("SELECT kind, COUNT(*) FROM t GROUP BY kind")
        assert len(q.group_by) == 1

    def test_group_by_multiple_keys(self):
        q = parse("SELECT a, b, SUM(c) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2

    def test_group_by_prints_and_reparses(self):
        sql = "SELECT kind, COUNT(*) AS n FROM t GROUP BY kind"
        q = parse(sql)
        assert parse(str(q)) == q


class TestHelpers:
    def test_is_aggregate_call(self):
        q = parse("SELECT COUNT(*), LOWER(x) FROM t")
        assert is_aggregate_call(q.items[0].expr)
        assert not is_aggregate_call(q.items[1].expr)

    def test_contains_aggregate_nested(self):
        q = parse("SELECT x FROM t WHERE COUNT(y) + 1 > 2")
        assert contains_aggregate(q.where)

    def test_aggregate_argument_star_only_for_count(self):
        with pytest.raises(ValueError):
            aggregate_argument(ast.FunctionCall("SUM", (ast.Star(),)))

    def test_numeric_value_plain(self):
        assert numeric_value(5) == 5.0
        assert numeric_value("2.5") == 2.5
        assert numeric_value(None) is None
        assert numeric_value("abc") is None

    def test_numeric_value_fused_averages_components(self):
        assert numeric_value("10 | 20") == 15.0

    def test_numeric_value_fused_with_junk(self):
        assert numeric_value("10 | n/a") == 10.0


class TestAccumulators:
    def test_count_all(self):
        acc = CountAll()
        for v in (1, None, "x"):
            acc.add(v)
        assert acc.result() == 3

    def test_count_values_skips_null(self):
        acc = CountValues()
        for v in (1, None, "x"):
            acc.add(v)
        assert acc.result() == 2

    def test_sum(self):
        acc = Sum()
        for v in (1, 2, None, "junk"):
            acc.add(v)
        assert acc.result() == 3.0

    def test_sum_of_nothing_is_null(self):
        assert Sum().result() is None

    def test_avg(self):
        acc = Avg()
        for v in (10, 20):
            acc.add(v)
        assert acc.result() == 15.0

    def test_min_max_numeric(self):
        low, high = Extreme(False), Extreme(True)
        for v in (3, 1, 2):
            low.add(v)
            high.add(v)
        assert low.result() == 1.0
        assert high.result() == 3.0

    def test_min_lexicographic_fallback(self):
        acc = Extreme(False)
        for v in ("banana", "apple"):
            acc.add(v)
        assert acc.result() == "apple"

    def test_make_accumulator_rejects_non_aggregate(self):
        with pytest.raises(ValueError):
            make_accumulator(ast.FunctionCall("LOWER", (ast.ColumnRef("x"),)))


class TestRelationalAggregation:
    def test_global_count(self, engine):
        result = engine.execute("SELECT COUNT(*) AS n FROM T")
        assert result.rows == [(5,)]

    def test_count_column_skips_nulls(self, engine):
        result = engine.execute("SELECT COUNT(score) AS n FROM T")
        assert result.rows == [(4,)]

    def test_group_by_with_avg(self, engine):
        result = engine.execute(
            "SELECT kind, COUNT(*) AS n, AVG(score) AS mean FROM T GROUP BY kind"
        )
        data = {row[0]: row[1:] for row in result.rows}
        assert data["a"] == (2, 15.0)
        assert data["b"] == (2, 30.0)
        assert data[None][0] == 1

    def test_aggregate_over_empty_input(self, engine):
        result = engine.execute("SELECT COUNT(*) AS n, SUM(score) s FROM T WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_group_key_must_be_grouped(self, engine):
        with pytest.raises(PlanningError):
            engine.execute("SELECT kind, score FROM T GROUP BY kind")

    def test_star_with_aggregation_rejected(self, engine):
        with pytest.raises(PlanningError):
            engine.execute("SELECT *, COUNT(*) FROM T GROUP BY kind")

    def test_aggregation_after_join(self, engine):
        other = Table("U", Schema.of("id", "kind"), [("u1", "a"), ("u2", "b")])
        engine.register(other)
        result = engine.execute(
            "SELECT U.kind, COUNT(*) AS n FROM T JOIN U ON T.kind = U.kind GROUP BY U.kind"
        )
        data = dict(result.rows)
        assert data == {"a": 2, "b": 2}

    def test_order_by_on_aggregate_output(self, engine):
        result = engine.execute(
            "SELECT kind, COUNT(*) AS n FROM T WHERE kind IS NOT NULL GROUP BY kind ORDER BY kind DESC"
        )
        assert [row[0] for row in result.rows] == ["b", "a"]


class TestDedupAggregation:
    @pytest.fixture
    def dirty_engine(self):
        table = Table(
            "D",
            Schema.of("id", "name", "kind", "score"),
            [
                ("d1", "john smith", "a", "10"),
                ("d2", "john smyth", "a", "20"),
                ("d3", "mary brown", "b", "30"),
                ("d4", "kate jones", "b", "40"),
            ],
        )
        e = QueryEREngine(sample_stats=False)
        e.register(table)
        return e

    def test_dedup_count_counts_entities(self, dirty_engine):
        plain = dirty_engine.execute("SELECT COUNT(*) AS n FROM D")
        dedup = dirty_engine.execute("SELECT DEDUP COUNT(*) AS n FROM D")
        assert plain.rows == [(4,)]
        assert dedup.rows == [(3,)]  # john smith ≡ john smyth

    def test_dedup_group_by(self, dirty_engine):
        result = dirty_engine.execute(
            "SELECT DEDUP kind, COUNT(*) AS n FROM D GROUP BY kind"
        )
        assert dict(result.rows) == {"a": 1, "b": 2}

    def test_dedup_avg_over_fused_values(self, dirty_engine):
        result = dirty_engine.execute("SELECT DEDUP AVG(score) AS mean FROM D")
        # Clusters: {10|20} → 15, {30} and {40} → mean of (15, 30, 40).
        assert result.rows[0][0] == pytest.approx((15 + 30 + 40) / 3)

    def test_dedup_group_key_validation(self, dirty_engine):
        from repro.core.planner import DedupPlanningError

        with pytest.raises(DedupPlanningError):
            dirty_engine.execute("SELECT DEDUP name, COUNT(*) FROM D GROUP BY kind")
