"""Dropping a table purges every engine artefact derived from it.

Regression suite for the stale-state bug: ``Catalog.unregister`` used to
remove only the catalog entry, leaving the TBI/ITBI bundle, matcher,
cached statistics, join-percentage cache and epoch entry behind — a
re-registered table under the same name could then serve another
table's blocking index or alias its epoch-keyed caches.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.datagen.people import people_schema
from repro.storage.catalog import TableNotFoundError
from repro.storage.table import Table


def people_rows(size: int, seed: int):
    table, _ = generate_people(size, seed=seed, name="PPL")
    return [tuple(row.values) for row in table]


@pytest.fixture()
def engine() -> QueryEREngine:
    e = QueryEREngine(sample_stats=False)
    e.register(Table("PPL", people_schema(), people_rows(80, seed=5)))
    return e


class TestUnregister:
    def test_removes_catalog_entry(self, engine):
        assert engine.unregister("PPL") is True
        assert "ppl" not in engine.catalog
        with pytest.raises(TableNotFoundError):
            engine.execute("SELECT id FROM PPL")

    def test_unknown_table_is_a_noop(self, engine):
        assert engine.unregister("nope") is False
        assert engine.epoch_of("PPL") == 1  # untouched

    def test_purges_index_and_matcher(self, engine):
        engine.unregister("PPL")
        assert "ppl" not in engine._indices
        assert "ppl" not in engine._matchers
        with pytest.raises(KeyError):
            engine.index_of("PPL")

    def test_purges_statistics(self, engine):
        engine.statistics_of("PPL")  # populate the cache
        assert "ppl" in engine._statistics
        engine.unregister("PPL")
        assert "ppl" not in engine._statistics

    def test_purges_join_percentages(self, engine):
        engine.register(Table("OTHER", people_schema(), people_rows(40, seed=9)))
        engine._join_percentages[("ppl", "other", "id", "id")] = (1.0, 1.0)
        engine._join_percentages[("other", "ppl", "id", "id")] = (1.0, 1.0)
        engine.unregister("PPL")
        assert not any("ppl" in key for key in engine._join_percentages)

    def test_epoch_entry_removed_but_retired(self, engine):
        engine.insert("PPL", [people_rows(81, seed=5)[-1]])
        retired = engine.epoch_of("PPL")
        assert retired == 2
        engine.unregister("PPL")
        assert "ppl" not in engine.table_epochs()
        # Re-registration must open a strictly larger epoch: epoch-keyed
        # caches (parallel plans, served results) would otherwise alias
        # artefacts of the dead table.
        engine.register(Table("PPL", people_schema(), people_rows(10, seed=6)))
        assert engine.epoch_of("PPL") > retired

    def test_reregistered_table_serves_its_own_rows(self, engine):
        engine.unregister("PPL")
        replacement = people_rows(12, seed=77)
        engine.register(Table("PPL", people_schema(), replacement))
        result = engine.execute("SELECT id FROM PPL")
        assert sorted(row[0] for row in result.rows) == sorted(
            row[0] for row in replacement
        )
        # The blocking index belongs to the replacement, not the old table.
        assert len(engine.index_of("PPL").table) == len(replacement)
