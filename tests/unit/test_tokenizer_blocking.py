"""Unit tests for tokenization and Token Blocking."""

from repro.er.blocking import Block, BlockCollection, TokenBlocking
from repro.er.tokenizer import tokenize_entity, tokenize_value


class TestTokenizeValue:
    def test_lowercases_and_splits(self):
        assert tokenize_value("ACM SIGMOD") == ["acm", "sigmod"]

    def test_splits_on_punctuation(self):
        assert tokenize_value("entity-resolution, 2008") == ["entity", "resolution", "2008"]

    def test_none_yields_nothing(self):
        assert tokenize_value(None) == []

    def test_short_tokens_dropped(self):
        assert tokenize_value("a of e.r x") == ["of"]

    def test_numbers_are_tokens(self):
        assert tokenize_value(2017) == ["2017"]

    def test_min_length_configurable(self):
        assert "x" in tokenize_value("x y", min_length=1)


class TestTokenizeEntity:
    def test_union_across_attributes(self):
        tokens = tokenize_entity({"title": "big data", "venue": "sigmod"})
        assert tokens == {"big", "data", "sigmod"}

    def test_exclusion(self):
        tokens = tokenize_entity({"id": "rec77", "title": "data"}, exclude=("id",))
        assert tokens == {"data"}

    def test_duplicate_tokens_collapse(self):
        assert tokenize_entity({"a": "data", "b": "data"}) == {"data"}


class TestBlock:
    def test_size_and_cardinality(self):
        block = Block("k", ["a", "b", "c"])
        assert block.size == 3
        assert block.cardinality == 3

    def test_singleton_has_zero_cardinality(self):
        assert Block("k", ["a"]).cardinality == 0

    def test_membership(self):
        assert "a" in Block("k", ["a"])


class TestBlockCollection:
    def test_add_groups_by_key(self):
        bc = BlockCollection()
        bc.add("tok", "e1")
        bc.add("tok", "e2")
        bc.add("other", "e1")
        assert len(bc) == 2
        assert bc.get("tok").entities == {"e1", "e2"}

    def test_cardinality_sums_blocks(self):
        bc = BlockCollection()
        for e in "abc":
            bc.add("k1", e)
        bc.add("k2", "a")
        bc.add("k2", "b")
        assert bc.cardinality == 3 + 1

    def test_non_singleton_filters(self):
        bc = BlockCollection()
        bc.add("k1", "a")
        bc.add("k2", "a")
        bc.add("k2", "b")
        assert bc.non_singleton().keys() == ["k2"]

    def test_inverted_sorted_ascending_by_size(self):
        bc = BlockCollection()
        for e in "abc":
            bc.add("big", e)
        bc.add("small", "a")
        bc.add("small", "b")
        assert bc.inverted()["a"] == ["small", "big"]

    def test_comparison_pairs_unique(self):
        bc = BlockCollection()
        bc.add("k1", "a")
        bc.add("k1", "b")
        bc.add("k2", "a")
        bc.add("k2", "b")
        assert bc.comparison_pairs() == {("a", "b")}

    def test_entity_ids(self):
        bc = BlockCollection()
        bc.add("k", "a")
        bc.add("j", "b")
        assert bc.entity_ids() == {"a", "b"}


class TestTokenBlocking:
    def test_build_from_entities(self):
        tb = TokenBlocking()
        bc = tb.build([("e1", {"t": "big data"}), ("e2", {"t": "big ideas"})])
        assert bc.get("big").entities == {"e1", "e2"}
        assert bc.get("data").entities == {"e1"}

    def test_excluded_attributes_do_not_block(self):
        tb = TokenBlocking(exclude_attributes=("id",))
        bc = tb.build([("e1", {"id": "shared", "t": "x1y2"})])
        assert bc.get("shared") is None

    def test_same_function_for_tbi_and_qbi(self):
        tb = TokenBlocking()
        entities = [("e1", {"t": "alpha beta"}), ("e2", {"t": "beta gamma"})]
        tbi = tb.build(entities)
        qbi = tb.build(entities[:1])
        assert set(qbi.keys()) <= set(tbi.keys())
