"""Unit tests for the planner statistics (§7.2.1)."""

import pytest

from repro.core.indices import TableIndex
from repro.core.statistics import ComparisonEstimator, TableStatistics, join_percentage
from repro.er.matching import ProfileMatcher
from repro.sql.parser import parse
from repro.storage.schema import Schema
from repro.storage.table import Table


def table():
    return Table(
        "T",
        Schema.of("id", "kind", "name"),
        [
            ("t1", "alpha", "john smith"),
            ("t2", "alpha", "john smith"),
            ("t3", "alpha", "mary brown"),
            ("t4", "bravo", "kate jones"),
            ("t5", "bravo", "kate jones"),
            ("t6", "charlie", "solo person"),
        ],
    )


def where(sql_condition: str):
    return parse(f"SELECT id FROM T WHERE {sql_condition}").where


@pytest.fixture
def estimator():
    return ComparisonEstimator(TableIndex(table()))


class TestSelectedEntities:
    def test_literal_maps_to_block_members(self, estimator):
        assert estimator.selected_entities(where("kind = 'alpha'")) == {"t1", "t2", "t3"}

    def test_and_intersects(self, estimator):
        selected = estimator.selected_entities(where("kind = 'alpha' AND name = 'john smith'"))
        assert selected == {"t1", "t2"}

    def test_or_unions(self, estimator):
        selected = estimator.selected_entities(where("kind = 'alpha' OR kind = 'bravo'"))
        assert selected == {"t1", "t2", "t3", "t4", "t5"}

    def test_in_list_unions_members(self, estimator):
        selected = estimator.selected_entities(where("kind IN ('alpha', 'charlie')"))
        assert selected == {"t1", "t2", "t3", "t6"}

    def test_non_literal_condition_falls_back_to_all(self, estimator):
        assert estimator.selected_entities(where("MOD(id, 10) < 1")) == set(table().ids)

    def test_no_where_means_whole_table(self, estimator):
        assert estimator.selected_entities(None) == set(table().ids)

    def test_multi_token_literal_intersects_tokens(self, estimator):
        selected = estimator.selected_entities(where("name = 'john smith'"))
        assert selected == {"t1", "t2"}

    def test_unknown_literal_selects_nothing(self, estimator):
        assert estimator.selected_entities(where("kind = 'zzznope'")) == set()


class TestComparisonEstimate:
    def test_estimate_zero_for_empty_selection(self, estimator):
        assert estimator.estimate(where("kind = 'zzznope'")) == 0

    def test_more_selective_query_estimates_fewer_comparisons(self, estimator):
        narrow = estimator.estimate(where("kind = 'charlie'"))
        wide = estimator.estimate(None)
        assert narrow <= wide

    def test_estimate_nonnegative(self, estimator):
        assert estimator.estimate(where("kind = 'alpha'")) >= 0

    def test_resolved_entities_reduce_estimate(self):
        index = TableIndex(table())
        estimator = ComparisonEstimator(index)
        before = estimator.estimate(where("kind = 'alpha'"))
        index.link_index.mark_resolved(["t1", "t2", "t3"])
        after = estimator.estimate(where("kind = 'alpha'"))
        assert after <= before
        assert after == 0


class TestTableStatistics:
    def test_duplication_factor_detects_duplicates(self):
        index = TableIndex(table())
        stats = TableStatistics(index, ProfileMatcher(exclude=("id",)), sample_fraction=1.0)
        assert stats.duplication_factor > 0

    def test_estimated_dr_size_scales(self):
        index = TableIndex(table())
        stats = TableStatistics(index, ProfileMatcher(exclude=("id",)), sample_fraction=1.0)
        assert stats.estimated_dr_size(100) >= 100

    def test_clean_sample_has_zero_factor(self):
        clean = Table("C", Schema.of("id", "v"), [("1", "aa bb"), ("2", "zz qq")])
        stats = TableStatistics(TableIndex(clean), ProfileMatcher(exclude=("id",)), sample_fraction=1.0)
        assert stats.duplication_factor == 0.0


class TestJoinPercentage:
    def test_full_overlap(self):
        left = TableIndex(Table("L", Schema.of("id", "k"), [("l1", "x"), ("l2", "y")]))
        right = TableIndex(Table("R", Schema.of("id", "k"), [("r1", "x"), ("r2", "y")]))
        assert join_percentage(left, right, "k", "k") == (1.0, 1.0)

    def test_partial_overlap(self):
        left = TableIndex(Table("L", Schema.of("id", "k"), [("l1", "x"), ("l2", "zz")]))
        right = TableIndex(Table("R", Schema.of("id", "k"), [("r1", "x")]))
        lp, rp = join_percentage(left, right, "k", "k")
        assert lp == pytest.approx(0.5)
        assert rp == pytest.approx(1.0)

    def test_case_folding(self):
        left = TableIndex(Table("L", Schema.of("id", "k"), [("l1", "EDBT")]))
        right = TableIndex(Table("R", Schema.of("id", "k"), [("r1", "edbt")]))
        assert join_percentage(left, right, "k", "k") == (1.0, 1.0)

    def test_nulls_never_join(self):
        left = TableIndex(Table("L", Schema.of("id", "k"), [("l1", None)]))
        right = TableIndex(Table("R", Schema.of("id", "k"), [("r1", "x")]))
        lp, rp = join_percentage(left, right, "k", "k")
        assert lp == 0.0 and rp == 0.0
