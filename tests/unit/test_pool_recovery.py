"""Unit tests of WorkerPool failure recovery (repro.parallel.pool).

Every failure path is driven deterministically through the fault sites
the pool threads through itself: ``pool.task`` (worker crash),
``pool.task_hang`` (worker hang, contained by the per-task timeout) and
``pool.spawn`` (process-pool creation failure → thread fallback).
"""

from __future__ import annotations

import warnings

import pytest

from repro.parallel.config import fork_available
from repro.parallel.pool import (
    TaskExecutionError,
    TaskTimeout,
    WorkerPool,
    reset_process_fallback_warning,
)
from repro.resilience import DEGRADATION, FaultError, FaultPlan, clear_plan, install_plan


def _square(task):
    return task * task


TASKS = list(range(6))
EXPECTED = [t * t for t in TASKS]


@pytest.fixture(autouse=True)
def _isolated():
    clear_plan()
    DEGRADATION.clear()
    reset_process_fallback_warning()
    yield
    clear_plan()
    DEGRADATION.clear()
    reset_process_fallback_warning()


class TestConstruction:
    def test_rejects_bad_recovery_knobs(self):
        with pytest.raises(ValueError):
            WorkerPool(2, "thread", retries=-1)
        with pytest.raises(ValueError):
            WorkerPool(2, "thread", task_timeout=0)

    def test_single_worker_degrades_to_serial(self):
        assert WorkerPool(1, "thread").backend == "serial"


class TestTaskRecovery:
    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("serial", 1)])
    def test_no_faults_results_in_task_order(self, backend, workers):
        pool = WorkerPool(workers, backend)
        assert pool.run(_square, TASKS, None) == EXPECTED

    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("serial", 1)])
    def test_transient_crash_recovers_bit_identically(self, backend, workers):
        install_plan(FaultPlan().add("pool.task", times=1))
        pool = WorkerPool(workers, backend, retries=2)
        assert pool.run(_square, TASKS, None) == EXPECTED
        assert DEGRADATION.count("parallel") == 1
        events = DEGRADATION.events()
        assert events[0].site == "task_retry"

    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("serial", 1)])
    def test_persistent_crash_exhausts_into_typed_error(self, backend, workers):
        install_plan(FaultPlan().add("pool.task", times=None))
        pool = WorkerPool(workers, backend, retries=2)
        with pytest.raises(TaskExecutionError) as excinfo:
            pool.run(_square, TASKS, None)
        assert excinfo.value.attempts == 3  # pool try + 2 serial retries
        assert isinstance(excinfo.value.__cause__, FaultError)
        assert any(e.site == "task_failed" for e in DEGRADATION.events())

    def test_zero_retries_fails_fast(self):
        install_plan(FaultPlan().add("pool.task", times=1))
        pool = WorkerPool(2, "thread", retries=0)
        with pytest.raises(TaskExecutionError) as excinfo:
            pool.run(_square, TASKS, None)
        assert excinfo.value.attempts == 1

    def test_hang_is_contained_by_task_timeout_then_recovered(self):
        # One worker thread sleeps well past the task timeout; its task
        # is written off as TaskTimeout and re-run serially (where the
        # exhausted hang spec stays silent), so results still match.
        install_plan(FaultPlan().add("pool.task_hang", kind="hang", delay=1.5, times=1))
        pool = WorkerPool(2, "thread", retries=2, task_timeout=0.2)
        assert pool.run(_square, TASKS, None) == EXPECTED
        events = DEGRADATION.events()
        assert events and events[0].site == "task_retry"
        assert "TaskTimeout" in events[0].detail

    def test_persistent_hang_surfaces_timeout_cause(self):
        install_plan(
            FaultPlan().add("pool.task_hang", kind="hang", delay=1.5, times=None)
        )
        pool = WorkerPool(2, "thread", retries=0, task_timeout=0.2)
        with pytest.raises(TaskExecutionError) as excinfo:
            pool.run(_square, TASKS[:2], None)
        assert isinstance(excinfo.value.__cause__, TaskTimeout)

    def test_empty_task_list_short_circuits(self):
        install_plan(FaultPlan().add("pool.task", times=None))
        assert WorkerPool(2, "thread").run(_square, [], None) == []


@pytest.mark.skipif(not fork_available(), reason="fork backend unavailable")
class TestProcessBackend:
    def test_transient_crashes_in_forked_workers_recover(self):
        # Each forked worker inherits its own copy of the plan, so the
        # fault can fire once per child *and* once in the parent's first
        # serial retry; bounded retries still converge on exact results.
        install_plan(FaultPlan().add("pool.task", times=1))
        pool = WorkerPool(2, "process", retries=2)
        assert pool.run(_square, TASKS, None) == EXPECTED
        assert DEGRADATION.count("parallel") >= 1

    def test_spawn_failure_falls_back_to_threads(self):
        install_plan(FaultPlan().add("pool.spawn", times=1))
        pool = WorkerPool(2, "process")
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            assert pool.run(_square, TASKS, None) == EXPECTED
        assert any(e.site == "pool_spawn" for e in DEGRADATION.events())

    def test_spawn_fallback_warning_is_once_per_process(self):
        install_plan(FaultPlan().add("pool.spawn", times=None))
        pool = WorkerPool(2, "process")
        with pytest.warns(RuntimeWarning):
            pool.run(_square, TASKS, None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            pool.run(_square, TASKS, None)
        reset_process_fallback_warning()
        with pytest.warns(RuntimeWarning):
            pool.run(_square, TASKS, None)
