"""Serving-layer resilience: faults never wedge the service or leak slots.

Covers the failure surface of :mod:`repro.serving` end to end: handler
exceptions (injected via ``serving.handler``), slow executions
(``serving.slow``), coalesced-follower timeouts, the 503/504 wire
contract with ``error_kind`` and ``Retry-After``, epoch-correct caching
around a timed-out execution that later completes, and the
:class:`RetryingClient` recovery discipline against a genuinely faulty
server.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.datagen.people import people_schema
from repro.parallel import ExecutionConfig
from repro.resilience import DEGRADATION, FaultError, FaultPlan, clear_plan, install_plan
from repro.serving import (
    EngineService,
    GaveUp,
    RequestTimeout,
    RetryingClient,
    make_server,
)
from repro.storage.table import Table

SQL = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state = 'nsw'"


@pytest.fixture(autouse=True)
def _isolated():
    clear_plan()
    DEGRADATION.clear()
    yield
    clear_plan()
    DEGRADATION.clear()


@pytest.fixture()
def rows():
    table, _ = generate_people(155, seed=21, name="PPL")
    values = [tuple(row.values) for row in table]
    return values[:150], values[150:]


@pytest.fixture()
def service(rows):
    base, _ = rows
    engine = QueryEREngine(sample_stats=False, execution=ExecutionConfig.serial())
    engine.register(Table("PPL", people_schema(), base))
    return EngineService(engine, max_inflight=4, cache_size=64)


@pytest.fixture()
def served(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield host, port, service
    server.shutdown()
    server.server_close()


def _slots_are_clean(service: EngineService) -> bool:
    """No leaked admission slot, and the engine gate is acquirable."""
    if service._inflight != 0:
        return False
    if not service._gate.acquire(blocking=False):
        return False
    service._gate.release()
    return True


def _http_error(host, port, method, path, body=None):
    """Issue one request expected to fail; returns (status, payload)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServiceFaultContainment:
    def test_handler_fault_releases_every_slot(self, service):
        install_plan(FaultPlan().add("serving.handler", times=1))
        with pytest.raises(FaultError):
            service.query(SQL)
        assert _slots_are_clean(service)
        assert service.metrics.counter("execution_errors") == 1
        assert DEGRADATION.count("serving") == 1
        # The fault is spent: the very next request answers normally.
        assert service.query(SQL).cache == "miss"

    def test_failed_insert_releases_slots_and_keeps_cache_valid(self, service, rows):
        _, extra = rows
        epochs_before = service.engine.table_epochs()
        warmed = service.query(SQL)
        install_plan(FaultPlan().add("dml.before_commit", times=1))
        with pytest.raises(Exception) as excinfo:
            service.insert_rows("PPL", extra)
        assert getattr(excinfo.value, "rolled_back", False)
        assert _slots_are_clean(service)
        assert service.metrics.counter("insert_errors") == 1
        # No epoch advance happened, so the warmed entry still serves.
        assert service.engine.table_epochs() == epochs_before
        replay = service.query(SQL)
        assert replay.cache == "hit"
        assert replay.rows == warmed.rows

    def test_follower_timeout_while_leader_completes(self, service, rows):
        _, extra = rows
        epochs_before = service.engine.table_epochs()
        install_plan(FaultPlan().add("serving.slow", kind="hang", delay=1.0, times=1))
        leader_error = []

        def lead():
            try:
                service.query(SQL)
            except Exception as error:  # pragma: no cover - fails the test below
                leader_error.append(error)

        leader = threading.Thread(target=lead)
        leader.start()
        time.sleep(0.3)  # leader is now sleeping inside the gate
        with pytest.raises(RequestTimeout):
            service.query(SQL, timeout=0.1)  # coalesced follower gives up
        leader.join()
        assert not leader_error
        assert service.metrics.counter("timeouts") == 1
        assert _slots_are_clean(service)

        # The leader's completed execution was cached under the epoch
        # map read inside the gate — the 504 must not have poisoned it.
        hit = service.query(SQL)
        assert hit.cache == "hit"
        assert hit.epochs == epochs_before

        # After an insert advances the epoch, the old entry is stale by
        # key construction: the same query re-executes, never serving
        # the pre-insert answer under the new epochs.
        service.insert_rows("PPL", extra)
        fresh = service.query(SQL)
        assert fresh.cache == "miss"
        assert fresh.epochs != epochs_before


class TestHTTPErrorContract:
    def test_handler_fault_maps_to_500_injected_fault(self, served):
        host, port, service = served
        install_plan(FaultPlan().add("serving.handler", times=1))
        status, payload = _http_error(host, port, "POST", "/query", {"sql": SQL})
        assert status == 500
        assert payload["error_kind"] == "injected_fault"
        # The per-connection thread answered instead of dying: the
        # server keeps serving on the same socket.
        status, payload = _http_error(host, port, "POST", "/query", {"sql": SQL})
        assert status == 200
        metrics = service.metrics_snapshot()
        assert metrics["degradation"]["total"] >= 1

    def test_overload_carries_retry_after_header_and_kind(self, served):
        host, port, service = served
        with service._admission:
            service._inflight = service.max_inflight
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/query",
                data=json.dumps({"sql": SQL}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            error = excinfo.value
            payload = json.loads(error.read())
            assert error.code == 503
            assert payload["error_kind"] == "overload"
            assert float(error.headers["Retry-After"]) >= 1
            assert payload["retry_after_s"] > 0
        finally:
            with service._admission:
                service._inflight = 0

    def test_follower_timeout_maps_to_504(self, served):
        host, port, service = served
        install_plan(FaultPlan().add("serving.slow", kind="hang", delay=1.0, times=1))
        leader = threading.Thread(
            target=lambda: _http_error(host, port, "POST", "/query", {"sql": SQL})
        )
        leader.start()
        time.sleep(0.3)
        status, payload = _http_error(
            host, port, "POST", "/query", {"sql": SQL, "timeout": 0.1}
        )
        leader.join()
        assert status == 504
        assert payload["error_kind"] == "timeout"

    def test_bad_request_and_not_found_kinds(self, served):
        host, port, _ = served
        status, payload = _http_error(host, port, "POST", "/query", {"sql": ""})
        assert (status, payload["error_kind"]) == (400, "bad_request")
        status, payload = _http_error(host, port, "GET", "/nope")
        assert (status, payload["error_kind"]) == (404, "not_found")


class TestRetryingClient:
    def test_recovers_from_transient_handler_faults(self, served):
        host, port, _ = served
        install_plan(FaultPlan().add("serving.handler", times=2))
        client = RetryingClient(host, port, max_attempts=5, base_backoff=0.01, seed=3)
        status, payload = client.query(SQL)
        assert status == 200
        assert payload["rows"]
        assert client.stats["attempts"] == 3
        assert client.stats["retries"] == 2

    def test_gives_up_on_persistent_faults(self, served):
        host, port, _ = served
        install_plan(FaultPlan().add("serving.handler", times=None))
        client = RetryingClient(host, port, max_attempts=2, base_backoff=0.01, seed=3)
        with pytest.raises(GaveUp) as excinfo:
            client.query(SQL)
        assert excinfo.value.attempts == 2
        assert excinfo.value.status == 500

    def test_retries_rolled_back_insert_without_duplicating_rows(self, served, rows):
        host, port, service = served
        _, extra = rows
        install_plan(FaultPlan().add("dml.before_commit", times=1))
        client = RetryingClient(host, port, max_attempts=4, base_backoff=0.01, seed=3)
        status, payload = client.insert("PPL", extra)
        assert status == 200
        assert payload["inserted"] == len(extra)
        assert client.stats["attempts"] == 2  # one rollback, one commit
        # The rollback really left nothing behind: exactly one batch landed.
        assert len(service.engine.index_of("PPL").table) == 150 + len(extra)

    def test_retry_policy_table(self):
        client = RetryingClient("localhost", 1, seed=0)
        retryable = client._retryable
        assert retryable(200, {}, True) is None  # success is conclusive
        assert retryable(400, {"error_kind": "bad_request"}, True) is None
        assert retryable(503, {"retry_after_s": 2.5}, False) == 2.5  # pre-admission
        assert retryable(504, {}, True) == 0.0
        assert retryable(504, {}, False) is None  # write may have landed
        assert retryable(500, {"error_kind": "internal"}, True) == 0.0
        assert retryable(500, {"error_kind": "internal"}, False) is None
        assert retryable(500, {"error_kind": "ingest_failed"}, False) == 0.0

    def test_backoff_honors_retry_after_floor_and_jitters(self):
        sleeps = []
        client = RetryingClient(
            "localhost", 1, base_backoff=0.01, max_backoff=0.05,
            seed=5, sleeper=sleeps.append,
        )
        client._backoff(0, 0.5)
        assert sleeps and sleeps[0] >= 0.5  # server hint is a floor
        sleeps.clear()
        for attempt in range(8):
            client._backoff(attempt, None)
        assert all(s <= 0.05 for s in sleeps)  # capped by max_backoff
        # Deterministic under the seed: same schedule every run.
        replay = []
        twin = RetryingClient(
            "localhost", 1, base_backoff=0.01, max_backoff=0.05,
            seed=5, sleeper=replay.append,
        )
        twin._backoff(0, 0.5)
        for attempt in range(8):
            twin._backoff(attempt, None)
        assert replay == [0.5] + sleeps
