"""Unit tests for the Deduplicate operator (§6.1)."""

import pytest

from repro.core.dedup_operator import DedupStats, DeduplicateOperator
from repro.core.indices import TableIndex
from repro.er.meta_blocking import MetaBlockingConfig
from repro.sql.physical import ExecutionContext
from repro.storage.schema import Schema
from repro.storage.table import Table


def dirty_table():
    """Three true clusters: {r1, r2}, {r3, r4, r5}, {r6}."""
    return Table(
        "T",
        Schema.of("id", "name", "city"),
        [
            ("r1", "jonathan smith", "berlin"),
            ("r2", "jonathan smyth", "berlin"),
            ("r3", "maria garcia lopez", "athens"),
            ("r4", "maria garcia lopez", "athens"),
            ("r5", "maria g. lopez", "athens"),
            ("r6", "completely different person", "oslo"),
        ],
    )


@pytest.fixture
def operator():
    index = TableIndex(dirty_table())
    return DeduplicateOperator(index, meta_blocking=MetaBlockingConfig.none())


class TestDeduplicate:
    def test_finds_duplicates_of_selection(self, operator):
        result = operator.deduplicate(["r1"])
        assert result.query_ids == {"r1"}
        assert result.duplicate_ids == {"r2"}
        assert ("r1", "r2") in result.links

    def test_no_duplicates_for_unique_entity(self, operator):
        result = operator.deduplicate(["r6"])
        assert result.entity_ids == {"r6"}
        assert len(result.links) == 0

    def test_transitive_expansion_completes_cluster(self, operator):
        # r3 matches r4 and r5; all three must land in one cluster.
        result = operator.deduplicate(["r3"])
        assert result.entity_ids == {"r3", "r4", "r5"}
        assert result.clusters() == [{"r3", "r4", "r5"}]

    def test_comparison_counting(self, operator):
        context = ExecutionContext()
        operator.deduplicate(["r1"], context)
        assert context.comparisons > 0

    def test_each_pair_compared_once(self, operator):
        stats = DedupStats()
        operator.collect_candidates = True
        operator.deduplicate(["r3"], stats=stats)
        assert len(stats.candidate_pairs) == len(set(stats.candidate_pairs))

    def test_empty_selection(self, operator):
        result = operator.deduplicate([])
        assert len(result.entity_ids) == 0

    def test_stage_times_recorded(self, operator):
        context = ExecutionContext()
        operator.deduplicate(["r1"], context)
        assert {"block-join", "meta-blocking", "resolution"} <= set(context.stage_times)


class TestLinkIndexIntegration:
    def test_second_query_skips_resolved_entities(self):
        index = TableIndex(dirty_table())
        operator = DeduplicateOperator(index, meta_blocking=MetaBlockingConfig.none())
        first_ctx = ExecutionContext()
        operator.deduplicate(["r1"], first_ctx)
        second_ctx = ExecutionContext()
        result = operator.deduplicate(["r1"], second_ctx)
        assert second_ctx.comparisons == 0  # links came from the LI
        assert result.duplicate_ids == {"r2"}

    def test_without_link_index_recomputes(self):
        index = TableIndex(dirty_table())
        operator = DeduplicateOperator(
            index, meta_blocking=MetaBlockingConfig.none(), use_link_index=False
        )
        operator.deduplicate(["r1"])
        context = ExecutionContext()
        operator.deduplicate(["r1"], context)
        assert context.comparisons > 0
        assert len(index.link_index) == 0  # LI untouched

    def test_li_amended_with_discovered_links(self):
        index = TableIndex(dirty_table())
        operator = DeduplicateOperator(index, meta_blocking=MetaBlockingConfig.none())
        operator.deduplicate(["r3"])
        assert index.link_index.cluster_of("r3") == {"r3", "r4", "r5"}
        assert index.link_index.is_resolved("r3")

    def test_partially_resolved_frontier(self):
        index = TableIndex(dirty_table())
        operator = DeduplicateOperator(index, meta_blocking=MetaBlockingConfig.none())
        operator.deduplicate(["r1"])
        context = ExecutionContext()
        result = operator.deduplicate(["r1", "r6"], context)
        assert result.entity_ids == {"r1", "r2", "r6"}


class TestNonTransitive:
    def test_single_round_when_disabled(self):
        index = TableIndex(dirty_table())
        operator = DeduplicateOperator(
            index,
            meta_blocking=MetaBlockingConfig.none(),
            transitive=False,
        )
        stats = DedupStats()
        operator.deduplicate(["r3"], stats=stats)
        assert stats.rounds == 1
