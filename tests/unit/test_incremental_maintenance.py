"""Unit tests for the incremental ingestion subsystem.

Covers the three maintenance steps individually — storage append,
delta TBI/ITBI amendment (append-then-amend ≡ rebuild-from-scratch),
Link-Index invalidation (targeted and full-reset) — plus the DML parse/
execute path and the statistics refresh.
"""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.indices import TableIndex
from repro.datagen import generate_people
from repro.incremental import InvalidationPolicy
from repro.sql import ast
from repro.sql.parser import ParseError, parse
from repro.storage.schema import Schema, SchemaError
from repro.storage.table import Table


def people_rows(size, seed=11):
    table, _ = generate_people(size, seed=seed)
    return table.schema, [tuple(r.values) for r in table]


def assert_indices_equal(incremental: TableIndex, rebuilt: TableIndex):
    assert set(incremental.tbi.keys()) == set(rebuilt.tbi.keys())
    for key in rebuilt.tbi.keys():
        assert incremental.tbi.get(key).entities == rebuilt.tbi.get(key).entities
    assert incremental.itbi == rebuilt.itbi


class TestTableAppend:
    def test_append_rows_extends_and_indexes(self):
        table = Table("T", Schema.of("id", "name"), [("a", "x")])
        added = table.append_rows([("b", "y"), ("c", "z")])
        assert [r.id for r in added] == ["b", "c"]
        assert len(table) == 3
        assert table.by_id("c")["name"] == "z"

    def test_append_batch_is_atomic_on_duplicate_id(self):
        table = Table("T", Schema.of("id", "name"), [("a", "x")])
        with pytest.raises(SchemaError):
            table.append_rows([("b", "y"), ("a", "clash")])
        with pytest.raises(SchemaError):
            table.append_rows([("c", "y"), ("c", "again")])
        assert len(table) == 1 and "b" not in table

    def test_append_rejects_null_id(self):
        table = Table("T", Schema.of("id", "name"), [("a", "x")])
        with pytest.raises(SchemaError):
            table.append_rows([(None, "y")])


class TestDeltaIndexMaintenance:
    def test_append_then_amend_equals_rebuild(self):
        schema, rows = people_rows(120)
        base = Table("PPL", schema, rows[:90], coerce=False)
        index = TableIndex(base)
        base.append_rows([tuple(v) for v in rows[90:]], coerce=False)
        index.add_records([r[0] for r in rows[90:]])
        rebuilt = TableIndex(Table("PPL", schema, rows, coerce=False))
        assert_indices_equal(index, rebuilt)

    def test_multiple_small_batches_equal_rebuild(self):
        schema, rows = people_rows(100, seed=5)
        base = Table("PPL", schema, rows[:70], coerce=False)
        index = TableIndex(base)
        for start in range(70, 100, 7):
            batch = rows[start : start + 7]
            base.append_rows(batch, coerce=False)
            index.add_records([r[0] for r in batch])
        rebuilt = TableIndex(Table("PPL", schema, rows, coerce=False))
        assert_indices_equal(index, rebuilt)

    def test_tokenless_record_gets_no_itbi_entry(self):
        # A record whose attributes yield no blocking tokens must be
        # indexed exactly like a rebuild would: absent from the ITBI.
        table = Table("T", Schema.of("id", "title"), [("e1", "alpha beta")])
        index = TableIndex(table)
        table.append_rows([("e2", None)])
        delta = index.add_records(["e2"])
        assert delta.touched_keys == frozenset()
        rebuilt = TableIndex(Table("T", Schema.of("id", "title"), [("e1", "alpha beta"), ("e2", None)]))
        assert_indices_equal(index, rebuilt)
        assert "e2" not in index.itbi

    def test_delta_reports_touched_and_affected(self):
        table = Table(
            "T",
            Schema.of("id", "title"),
            [("e1", "alpha beta"), ("e2", "gamma"), ("e3", "omega")],
        )
        index = TableIndex(table)
        table.append_rows([("e4", "beta delta")])
        delta = index.add_records(["e4"])
        assert delta.new_ids == ("e4",)
        assert delta.touched_keys == {"beta", "delta"}
        assert delta.affected_ids == {"e1"}  # only e1 shares a touched block


class TestLinkIndexInvalidation:
    def engine_with_resolved_pair(self, policy=InvalidationPolicy.TARGETED):
        engine = QueryEREngine(sample_stats=False, invalidation_policy=policy)
        engine.register(
            Table(
                "P",
                Schema.of("id", "title"),
                [
                    ("p1", "collective entity resolution"),
                    ("p2", "collective entity resolutoin"),
                    ("p3", "unrelated consumer study"),
                ],
            )
        )
        engine.execute("SELECT DEDUP id, title FROM P")
        return engine

    def test_targeted_unresolves_cluster_of_affected_entities(self):
        engine = self.engine_with_resolved_pair()
        li = engine.index_of("P").link_index
        assert li.is_resolved("p1") and li.is_resolved("p2") and li.is_resolved("p3")
        outcome = engine.insert("P", [("p4", "collective entity res")])
        # p4 shares blocks with the p1≡p2 cluster → both un-resolved;
        # p3 shares no touched block → its resolution survives.
        assert not li.is_resolved("p1")
        assert not li.is_resolved("p2")
        assert li.is_resolved("p3")
        assert outcome.invalidated == 2
        # Recorded links are kept — they are still true.
        assert li.duplicates_of("p1") == {"p2"}

    def test_cluster_closure_reaches_entities_without_touched_blocks(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(
            Table(
                "P",
                Schema.of("id", "title"),
                [
                    ("p1", "evergreen oak ridge"),
                    ("p2", "evergreen oak rigde citrus"),
                    ("p3", "totally different words"),
                ],
            )
        )
        engine.execute("SELECT DEDUP id, title FROM P")
        li = engine.index_of("P").link_index
        assert li.duplicates_of("p2") == {"p1"}
        # Shares a block only with p2 ("citrus" is p2-only among tokens).
        engine.insert("P", [("p4", "citrus grove")])
        assert not li.is_resolved("p2")
        assert not li.is_resolved("p1")  # via cluster closure, no shared block
        assert li.is_resolved("p3")

    def test_unaffected_inserts_invalidate_nothing(self):
        engine = self.engine_with_resolved_pair()
        outcome = engine.insert("P", [("p9", "zzz qqq www")])
        assert outcome.invalidated == 0
        assert engine.index_of("P").link_index.is_resolved("p1")

    def test_full_reset_policy_clears_link_index(self):
        engine = self.engine_with_resolved_pair(policy="full_reset")
        li = engine.index_of("P").link_index
        outcome = engine.insert("P", [("p9", "zzz qqq www")])
        assert outcome.policy is InvalidationPolicy.FULL_RESET
        assert outcome.invalidated == 3
        assert li.resolved_count == 0 and len(li) == 0

    def test_query_after_insert_matches_fresh_engine(self):
        engine = self.engine_with_resolved_pair()
        engine.insert("P", [("p4", "collective entity res")])
        grown = engine.catalog.get("P")
        fresh = QueryEREngine(sample_stats=False)
        fresh.register(Table("P2", grown.schema, [tuple(r.values) for r in grown], coerce=False))
        sql = "SELECT DEDUP id, title FROM {} WHERE title LIKE 'collective%'"
        assert (
            engine.execute(sql.format("P")).sorted_rows()
            == fresh.execute(sql.format("P2")).sorted_rows()
        )


class TestInsertSql:
    def test_parse_multi_row_insert(self):
        statement = parse(
            "INSERT INTO t (id, name) VALUES ('a', 'x'), ('b', NULL), ('c', 'z');"
        )
        assert isinstance(statement, ast.InsertStatement)
        assert statement.table == "t"
        assert statement.columns == ("id", "name")
        assert [tuple(v.value for v in row) for row in statement.rows] == [
            ("a", "x"),
            ("b", None),
            ("c", "z"),
        ]

    def test_parse_insert_without_column_list_and_negatives(self):
        statement = parse("INSERT INTO t VALUES (1, -2.5, TRUE)")
        assert statement.columns == ()
        assert [v.value for v in statement.rows[0]] == [1, -2.5, True]

    def test_parse_rejects_expressions_in_values(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t (id) VALUES (1 + 2)")

    def test_parse_rejects_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t (id, name) VALUES ('a')")
        with pytest.raises(ParseError):
            parse("INSERT INTO t VALUES ('a', 'b'), ('c')")

    def test_select_accepts_trailing_semicolon(self):
        query = parse("SELECT id FROM t;")
        assert isinstance(query, ast.SelectQuery)

    def test_insert_statement_roundtrips_through_str(self):
        text = "INSERT INTO t (id, name) VALUES ('a', 'x'), ('b', NULL)"
        assert str(parse(text)) == text

    def test_execute_insert_reports_counters(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(Table("T", Schema.of("id", "name"), [("a", "alpha")]))
        result = engine.execute("INSERT INTO T (id, name) VALUES ('b', 'beta')")
        assert result.columns == ["rows_inserted", "touched_blocks", "invalidated_entities"]
        assert result.rows[0][0] == 1
        assert len(engine.catalog.get("T")) == 2

    def test_insert_missing_columns_become_null(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(Table("T", Schema.of("id", "name", "city"), [("a", "x", "rome")]))
        engine.execute("INSERT INTO T (city, id) VALUES ('oslo', 'b')")
        row = engine.catalog.get("T").by_id("b")
        assert row["city"] == "oslo" and row["name"] is None

    def test_insert_unknown_table_or_column_fails_cleanly(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(Table("T", Schema.of("id", "name"), [("a", "x")]))
        with pytest.raises(KeyError):
            engine.execute("INSERT INTO missing (id) VALUES ('b')")
        with pytest.raises(SchemaError):
            engine.execute("INSERT INTO T (nope) VALUES ('b')")
        with pytest.raises(SchemaError):
            engine.execute("INSERT INTO T (id, id) VALUES ('b', 'c')")
        assert len(engine.catalog.get("T")) == 1


class TestStatisticsRefresh:
    def test_duplication_sample_marked_stale_and_recomputed(self):
        engine = QueryEREngine(sample_stats=True)
        table, _ = generate_people(60, seed=3)
        engine.register(table)
        before = engine.statistics_of("PPL")
        assert before.base_rows == 60 and not before.stale
        engine.insert("PPL", [(9001, "zz", "yy")], columns=["id", "given_name", "surname"])
        assert before.stale
        after = engine.statistics_of("PPL")
        assert after is not before
        assert after.base_rows == 61 and not after.stale

    def test_join_percentages_recomputed_after_insert(self):
        engine = QueryEREngine(sample_stats=False)
        engine.register(Table("L", Schema.of("id", "ref"), [("l1", "k1"), ("l2", "k2")]))
        engine.register(Table("R", Schema.of("id", "key"), [("r1", "k1")]))
        assert engine.join_percentage("L", "R", "ref", "key") == (0.5, 1.0)
        engine.insert("R", [("r2", "k2")])
        assert engine.join_percentage("L", "R", "ref", "key") == (1.0, 1.0)
