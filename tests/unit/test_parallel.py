"""Unit tests of the parallel execution subsystem (repro.parallel)."""

from __future__ import annotations

import threading

import pytest

from repro.core.batch import batch_deduplicate
from repro.core.engine import QueryEREngine
from repro.core.indices import TableIndex
from repro.datagen import generate_people
from repro.er.util import LRUCache
from repro.parallel import (
    ExecutionConfig,
    ParallelComparisonExecutor,
    PartitionPlanner,
    WorkerPool,
    detect_workers,
)
from repro.parallel.merger import DeterministicMerger
from repro.parallel.tasks import MatchResult


def parallel_config(workers: int = 4, backend: str = "thread") -> ExecutionConfig:
    """A config whose thresholds force the parallel path on tiny inputs."""
    return ExecutionConfig(
        workers=workers,
        backend=backend,
        min_parallel_pairs=0,
        min_parallel_comparisons=0,
    )


class TestExecutionConfig:
    def test_auto_detection_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert detect_workers() == 3
        assert ExecutionConfig().resolved_workers() == 3

    def test_bad_env_falls_back_to_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert detect_workers() >= 1

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert ExecutionConfig(workers=2).resolved_workers() == 2

    def test_single_worker_resolves_serial(self):
        config = ExecutionConfig(workers=1, backend="process")
        assert config.resolved_backend() == "serial"
        assert not config.parallel

    def test_rejects_unknown_backend_and_zero_workers(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)

    def test_serial_shorthand(self):
        assert not ExecutionConfig.serial().parallel


class TestPartitionPlanner:
    def test_pair_partitions_are_contiguous_and_cover(self):
        planner = PartitionPlanner(workers=4, partitions_per_worker=4)
        partitions = planner.partition_pairs(1003)
        assert partitions[0].start == 0
        assert partitions[-1].stop == 1003
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.stop == current.start
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_partitions(self):
        planner = PartitionPlanner(workers=4, partitions_per_worker=4)
        partitions = planner.partition_pairs(3)
        assert [len(p) for p in partitions] == [1, 1, 1]
        assert planner.partition_pairs(0) == []

    def test_block_partitions_balance_cardinality(self):
        table, _ = generate_people(300, seed=9)
        index = TableIndex(table)
        blocks = list(index.tbi.non_singleton())
        planner = PartitionPlanner(workers=4, partitions_per_worker=1)
        partitions = planner.partition_blocks(blocks)
        assert partitions[0].start == 0
        assert partitions[-1].stop == len(blocks)
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.stop == current.start
        costs = [
            sum(b.cardinality for b in blocks[p.start : p.stop]) for p in partitions
        ]
        total = sum(costs)
        # No span should dwarf the ideal share (contiguity permitting).
        assert max(costs) <= total  # sanity
        assert len(partitions) > 1
        assert max(costs) < total * 0.75


class TestWorkerPool:
    @pytest.mark.parametrize("backend", ["process", "thread", "serial"])
    def test_preserves_task_order(self, backend):
        pool = WorkerPool(workers=4, backend=backend)
        results = pool.run(_square, list(range(20)), payload=None)
        assert results == [i * i for i in range(20)]

    def test_single_worker_degrades_to_serial(self):
        assert WorkerPool(workers=1, backend="process").backend == "serial"


def _square(task):
    return task * task


class TestDeterministicMerger:
    def test_merge_matches_is_arrival_order_independent(self):
        results = [
            MatchResult(2, [20, 21], {"pairs": 2}),
            MatchResult(0, [1, 5], {"pairs": 4}),
            MatchResult(1, [9], {"pairs": 1}),
        ]
        assert DeterministicMerger.merge_matches(results) == [1, 5, 9, 20, 21]
        assert DeterministicMerger.merge_matches(reversed(results)) == [1, 5, 9, 20, 21]

    def test_merge_matches_folds_cascade_deltas(self):
        from repro.er.matching import ProfileMatcher

        matcher = ProfileMatcher()
        results = [MatchResult(0, [], {"pairs": 3}), MatchResult(1, [], {"pairs": 4})]
        DeterministicMerger.merge_matches(results, matcher)
        assert matcher.cascade_stats["pairs"] == 7


class TestLRUCacheThreadSafety:
    def test_concurrent_hammer_preserves_capacity_invariant(self):
        cache = LRUCache(64)
        errors = []

        def hammer(seed: int) -> None:
            try:
                for i in range(3000):
                    key = (seed * 31 + i) % 200
                    cache.put(key, i)
                    cache.get(key)
                    assert len(cache) <= 64
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestCandidatePlanCache:
    def test_store_hit_and_invalidate(self):
        executor = ParallelComparisonExecutor(parallel_config())
        frontier = {1, 2, 3}
        executor.store_candidates("P", frontier, "fp", [(1, 2)])
        assert executor.cached_candidates("P", frontier, "fp") == [(1, 2)]
        assert executor.cached_candidates("P", {1, 2}, "fp") is None
        assert executor.cached_candidates("P", frontier, "other-fp") is None
        executor.invalidate_table("p")
        assert executor.cached_candidates("P", frontier, "fp") is None

    def test_invalidate_clears_everything(self):
        executor = ParallelComparisonExecutor(parallel_config())
        executor.store_candidates("P", {1}, "fp", [])
        executor.invalidate()
        assert executor.cached_candidates("P", {1}, "fp") is None


class TestEngineInvalidation:
    """INSERT INTO followed by a parallel DEDUP never reads stale plans."""

    SQL = "SELECT DEDUP id, title, author, venue FROM P WHERE venue = 'EDBT'"

    @staticmethod
    def _engine(publications):
        from repro.er.meta_blocking import MetaBlockingConfig
        from repro.storage.table import Table

        # use_link_index=False keeps the frontier identical across
        # repeats — the exact regime where a stale cached plan would be
        # served after an append.  Meta-blocking stays off so block
        # co-occurrence alone decides candidacy (the purging/pruning
        # heuristics are unstable on a 9-row table and beside the
        # point here).  The session fixture is copied because these
        # tests INSERT into the table.
        engine = QueryEREngine(
            use_link_index=False,
            sample_stats=False,
            meta_blocking=MetaBlockingConfig.none(),
            execution=parallel_config(),
        )
        copy = Table(
            publications.name,
            publications.schema,
            [row.values for row in publications],
        )
        engine.register(copy)
        return engine

    def test_insert_between_repeated_parallel_dedups(self, publications):
        engine = self._engine(publications)
        first = engine.execute(self.SQL)
        assert not any("P9" in str(row[0]) for row in first.rows)
        # Prime the candidate-plan cache, then append a near-duplicate of
        # P1 under a *different* venue: it can only be found through
        # Block-Join (it never enters the frontier), so without plan
        # invalidation the cached plan would silently miss it.
        assert engine.parallel_executor.stats["candidate_cache_misses"] >= 1
        engine.execute(
            "INSERT INTO P (id, title, venue, year) VALUES "
            "('P9', 'Collective Entity Resolution', 'VLDB', '2008')"
        )
        second = engine.execute(self.SQL)
        assert any("P9" in str(row[0]) for row in second.rows)

    def test_repeated_frontier_hits_plan_cache(self, publications):
        engine = self._engine(publications)
        engine.execute(self.SQL)
        engine.execute(self.SQL)
        assert engine.parallel_executor.stats["candidate_cache_hits"] >= 1

    def test_clear_caches_drops_plans(self, publications):
        engine = self._engine(publications)
        engine.execute(self.SQL)
        engine.clear_caches()
        engine.execute(self.SQL)
        assert engine.parallel_executor.stats["candidate_cache_hits"] == 0


class TestBatchParallel:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_batch_deduplicate_parallel_equals_serial(self, backend):
        table, _ = generate_people(250, seed=17)
        serial = batch_deduplicate(TableIndex(table))
        executor = ParallelComparisonExecutor(parallel_config(backend=backend))
        parallel = batch_deduplicate(TableIndex(table), executor=executor)
        assert set(serial.links) == set(parallel.links)
        assert executor.stats["parallel_match_runs"] >= 1


class TestBatchModeWiring:
    def test_batch_execution_mode_uses_and_matches_the_pool(self):
        from repro.core.planner import ExecutionMode

        table, _ = generate_people(250, seed=21)
        sql = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state = 'nsw'"

        serial_engine = QueryEREngine(
            sample_stats=False, execution=ExecutionConfig.serial()
        )
        serial_engine.register(table)
        parallel_engine = QueryEREngine(sample_stats=False, execution=parallel_config())
        parallel_engine.register(table)

        expected = serial_engine.execute(sql, ExecutionMode.BATCH)
        got = parallel_engine.execute(sql, ExecutionMode.BATCH)
        assert sorted(got.rows, key=repr) == sorted(expected.rows, key=repr)
        assert got.comparisons == expected.comparisons
        assert parallel_engine.parallel_executor.stats["parallel_match_runs"] >= 1


class TestSerialEngineHasNoExecutor:
    def test_serial_config_keeps_pre_subsystem_path(self):
        engine = QueryEREngine(execution=ExecutionConfig.serial(), sample_stats=False)
        assert engine.parallel_executor is None
