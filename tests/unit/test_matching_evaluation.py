"""Unit tests for the profile matcher and ER evaluation measures."""

import pytest

from repro.er.evaluation import f_measure, pair_completeness, pairs_quality
from repro.er.matching import ProfileMatcher


class TestProfileMatcher:
    def test_identical_profiles_match(self):
        m = ProfileMatcher()
        p = {"name": "ann smith", "city": "berlin"}
        assert m.profile_similarity(p, dict(p)) == 1.0
        assert m.matches(p, dict(p))

    def test_disjoint_profiles_do_not_match(self):
        m = ProfileMatcher()
        assert not m.matches({"name": "ann smith"}, {"name": "zebulon quincy"})

    def test_nulls_are_skipped_in_aligned_signal(self):
        m = ProfileMatcher()
        sim = m.profile_similarity(
            {"name": "ann", "city": None}, {"name": "ann", "city": "berlin"}
        )
        assert sim == 1.0

    def test_all_null_yields_zero(self):
        m = ProfileMatcher()
        assert m.profile_similarity({"a": None}, {"a": None}) == 0.0

    def test_excluded_attributes_ignored(self):
        m = ProfileMatcher(exclude=("id",))
        sim = m.profile_similarity({"id": "1", "n": "x y"}, {"id": "2", "n": "x y"})
        assert sim == 1.0

    def test_token_signal_catches_cross_attribute_values(self):
        # Venue name under 'title' on one side, 'description' on the other.
        m = ProfileMatcher(threshold=0.5)
        left = {"title": "extending database technology", "description": None}
        right = {"title": None, "description": "extending database technology"}
        assert m.matches(left, right)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ProfileMatcher(threshold=1.5)

    def test_symmetry(self):
        m = ProfileMatcher()
        a = {"name": "jon smith", "city": "athens"}
        b = {"name": "john smyth", "city": "athens"}
        assert m.profile_similarity(a, b) == pytest.approx(m.profile_similarity(b, a))

    def test_similarity_bounded(self):
        m = ProfileMatcher()
        a = {"x": "abc def", "y": "123"}
        b = {"x": "zzz", "y": "456"}
        assert 0.0 <= m.profile_similarity(a, b) <= 1.0


class TestEvaluationMeasures:
    truth = {("a", "b"), ("c", "d"), ("e", "f")}

    def test_perfect_pc(self):
        assert pair_completeness(self.truth, self.truth) == 1.0

    def test_partial_pc(self):
        assert pair_completeness({("a", "b")}, self.truth) == pytest.approx(1 / 3)

    def test_pc_order_insensitive(self):
        assert pair_completeness({("b", "a")}, self.truth) == pytest.approx(1 / 3)

    def test_pc_empty_truth(self):
        assert pair_completeness({("a", "b")}, set()) == 1.0

    def test_pq(self):
        candidates = {("a", "b"), ("x", "y")}
        assert pairs_quality(candidates, self.truth) == pytest.approx(0.5)

    def test_pq_no_candidates(self):
        assert pairs_quality(set(), self.truth) == 1.0

    def test_f_measure(self):
        candidates = {("a", "b")}  # PC=1/3, PQ=1
        assert f_measure(candidates, self.truth) == pytest.approx(0.5)

    def test_f_measure_zero(self):
        assert f_measure({("q", "r")}, self.truth) == 0.0
