"""Unit tests for ``--format {table,json}`` and the ``serve`` entry point."""

import io
import json

import pytest

from repro.cli import build_serve_parser, run
from repro.core.engine import QueryEREngine
from repro.datagen import generate_dsd
from repro.storage.csv_io import write_csv


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    table, _ = generate_dsd(120, seed=55)
    path = tmp_path_factory.mktemp("cli_format") / "papers.csv"
    write_csv(table, path)
    return path


class TestJsonFormat:
    def test_plain_query_json(self, csv_path):
        out = io.StringIO()
        code = run(
            [
                "SELECT id, title FROM papers LIMIT 3",
                "--csv",
                str(csv_path),
                "--format",
                "json",
            ],
            output=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["columns"] == ["id", "title"]
        assert payload["row_count"] == 3
        assert len(payload["rows"]) == 3
        assert payload["elapsed_s"] >= 0

    def test_dedup_query_json_carries_er_metrics(self, csv_path):
        out = io.StringIO()
        code = run(
            [
                "SELECT DEDUP id, venue FROM papers WHERE venue = 'edbt'",
                "--csv",
                str(csv_path),
                "--format",
                "json",
            ],
            output=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["comparisons"] > 0
        assert payload["stage_times"]  # the --profile plumbing, machine-readable

    def test_json_rows_match_library_mode(self, csv_path):
        out = io.StringIO()
        run(
            [
                "SELECT DEDUP id, venue FROM papers WHERE venue = 'edbt'",
                "--csv",
                str(csv_path),
                "--format",
                "json",
                "--workers",
                "1",
            ],
            output=out,
        )
        payload = json.loads(out.getvalue())

        from repro.storage.csv_io import read_csv

        engine = QueryEREngine(execution=1)
        engine.register(read_csv(csv_path, name="papers"))
        expected = engine.execute("SELECT DEDUP id, venue FROM papers WHERE venue = 'edbt'")
        assert sorted(map(tuple, payload["rows"])) == sorted(
            tuple(row) for row in expected.rows
        )

    def test_table_format_is_default(self, csv_path):
        out = io.StringIO()
        code = run(
            ["SELECT id FROM papers LIMIT 1", "--csv", str(csv_path)], output=out
        )
        assert code == 0
        with pytest.raises(json.JSONDecodeError):
            json.loads(out.getvalue())


class TestServeParser:
    def test_defaults(self):
        args = build_serve_parser().parse_args(["--csv", "x.csv"])
        assert args.port == 7531
        assert args.max_inflight == 8
        assert args.cache_size == 256

    def test_serve_requires_csv(self):
        assert run(["serve"], output=io.StringIO()) == 2
