"""Unit tests for the febrl-style corruptor."""

import random

import pytest

from repro.datagen.corruptor import Corruptor


@pytest.fixture
def corruptor():
    return Corruptor(random.Random(99))


RECORD = {
    "id": "r1",
    "name": "jonathan archibald smitherson",
    "city": "melbourne",
    "state": "vic",
    "empty": None,
}


class TestCorruptRecord:
    def test_protected_attributes_untouched(self, corruptor):
        for _ in range(50):
            dirty = corruptor.corrupt_record(RECORD, protected=("id", "state"))
            assert dirty["id"] == "r1"
            assert dirty["state"] == "vic"

    def test_none_values_stay_none(self, corruptor):
        dirty = corruptor.corrupt_record(RECORD, protected=("id",))
        assert dirty["empty"] is None

    def test_something_usually_changes(self, corruptor):
        changed = 0
        for _ in range(30):
            dirty = corruptor.corrupt_record(RECORD, protected=("id", "state"))
            if dirty != RECORD:
                changed += 1
        assert changed >= 25

    def test_record_with_only_protected_attributes(self, corruptor):
        record = {"id": "x"}
        assert corruptor.corrupt_record(record, protected=("id",)) == record

    def test_per_attribute_budget_respected(self):
        # With max 1 mod per attribute and per record, at most one
        # attribute may differ.
        corruptor = Corruptor(random.Random(5), max_mods_per_attribute=1, max_mods_per_record=1)
        for _ in range(30):
            dirty = corruptor.corrupt_record(RECORD, protected=("id", "state"))
            differing = [k for k in RECORD if dirty.get(k) != RECORD[k]]
            assert len(differing) <= 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            Corruptor(random.Random(0), max_mods_per_attribute=0)
        with pytest.raises(ValueError):
            Corruptor(random.Random(0), max_mods_per_record=0)


class TestCorruptValue:
    def test_missing_rate_one_blanks_everything(self):
        corruptor = Corruptor(random.Random(0), missing_rate=1.0)
        assert corruptor.corrupt_value("anything") is None

    def test_missing_rate_zero_never_blanks(self):
        corruptor = Corruptor(random.Random(0), missing_rate=0.0)
        for _ in range(50):
            assert corruptor.corrupt_value("some value here") is not None

    def test_deterministic_for_same_seed(self):
        a = Corruptor(random.Random(7)).corrupt_value("hello world")
        b = Corruptor(random.Random(7)).corrupt_value("hello world")
        assert a == b


class TestMutations:
    def test_abbreviation(self, corruptor):
        out = corruptor._abbreviate_token("jonathan smith")
        assert "." in out

    def test_transpose_preserves_characters(self, corruptor):
        out = corruptor._typo_transpose("abcd")
        assert sorted(out) == list("abcd")

    def test_delete_shortens(self, corruptor):
        assert len(corruptor._typo_delete("abcd")) == 3

    def test_insert_lengthens(self, corruptor):
        assert len(corruptor._typo_insert("abcd")) == 5

    def test_token_swap_keeps_tokens(self, corruptor):
        out = corruptor._swap_tokens("one two three")
        assert sorted(out.split()) == ["one", "three", "two"]

    def test_drop_token_removes_one(self, corruptor):
        assert len(corruptor._drop_token("one two three").split()) == 2

    def test_single_char_edge_cases(self, corruptor):
        assert corruptor._typo_delete("a") == "a"
        assert corruptor._typo_transpose("a") == "a"
        assert corruptor._swap_tokens("single") == "single"
