"""Unit tests for the CLI and n-gram blocking."""

import io

import pytest

from repro.cli import run
from repro.datagen import generate_dsd
from repro.er.blocking import NGramBlocking, TokenBlocking
from repro.storage.csv_io import write_csv


@pytest.fixture
def csv_path(tmp_path):
    table, _ = generate_dsd(120, seed=55)
    path = tmp_path / "papers.csv"
    write_csv(table, path)
    return path


class TestCli:
    def test_plain_query(self, csv_path):
        out = io.StringIO()
        code = run(["SELECT id, title FROM papers LIMIT 3", "--csv", str(csv_path)], output=out)
        assert code == 0
        assert len(out.getvalue().splitlines()) == 5  # header + rule + 3 rows

    def test_dedup_query_with_stats(self, csv_path):
        out = io.StringIO()
        code = run(
            [
                "SELECT DEDUP id, venue FROM papers WHERE venue = 'edbt'",
                "--csv",
                str(csv_path),
                "--stats",
            ],
            output=out,
        )
        assert code == 0
        assert "comparisons" in out.getvalue()

    def test_named_registration(self, csv_path):
        out = io.StringIO()
        code = run(
            ["SELECT COUNT(*) AS n FROM pubs", "--csv", f"pubs={csv_path}"],
            output=out,
        )
        assert code == 0
        assert "120" in out.getvalue()

    def test_explain(self, csv_path):
        out = io.StringIO()
        code = run(
            ["SELECT DEDUP id FROM papers", "--csv", str(csv_path), "--explain"],
            output=out,
        )
        assert code == 0
        assert "Deduplicate" in out.getvalue()

    def test_missing_csv_is_an_error(self):
        assert run(["SELECT 1 FROM x"]) == 2

    def test_bad_query_is_an_error(self, csv_path):
        assert run(["SELECT FROM WHERE", "--csv", str(csv_path)]) == 1

    def test_mode_flag(self, csv_path):
        out = io.StringIO()
        code = run(
            [
                "SELECT DEDUP id FROM papers WHERE venue = 'edbt'",
                "--csv",
                str(csv_path),
                "--mode",
                "nes",
            ],
            output=out,
        )
        assert code == 0


class TestNGramBlocking:
    def test_ngrams_of_long_tokens(self):
        blocking = NGramBlocking(n=3)
        keys = blocking.keys_for({"name": "smith"})
        assert {"smi", "mit", "ith"} <= keys

    def test_short_tokens_kept_whole(self):
        blocking = NGramBlocking(n=3)
        assert blocking.keys_for({"name": "ab"}) == {"ab"}

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            NGramBlocking(n=1)

    def test_typo_tolerance_beats_token_blocking(self):
        entities = [("e1", {"name": "smith"}), ("e2", {"name": "smithe"})]
        token_pairs = TokenBlocking().build(entities).comparison_pairs()
        ngram_pairs = NGramBlocking(n=3).build(entities).comparison_pairs()
        assert ("e1", "e2") not in token_pairs  # different tokens → no block
        assert ("e1", "e2") in ngram_pairs  # shared n-grams → co-occur

    def test_exclusion_still_applies(self):
        blocking = NGramBlocking(n=3, exclude_attributes=("id",))
        assert blocking.keys_for({"id": "abcdef"}) == set()
