"""Unit tests for repro.er.similarity."""

import pytest

from repro.er.similarity import (
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
    token_jaccard,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_symmetric(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")

    def test_normalized_bounds(self):
        assert normalized_levenshtein("", "") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444444, abs=1e-6)

    def test_known_value_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7666666, abs=1e-6)

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "abc") == 0.0


class TestJaroWinkler:
    def test_known_value_martha_marhta(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611111, abs=1e-6)

    def test_prefix_boost_never_exceeds_one(self):
        assert jaro_winkler("aaaa", "aaaa") == 1.0

    def test_prefix_makes_it_at_least_jaro(self):
        assert jaro_winkler("dwayne", "duane") >= jaro("dwayne", "duane")

    def test_invalid_prefix_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_abbreviation_scores_high(self):
        assert jaro_winkler("collective entity resolution", "collective e.r.") > 0.8


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({1, 2}, [2, 1]) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({1}, {2}) == 0.0

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_partial_overlap(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_token_jaccard_case_insensitive(self):
        assert token_jaccard("ACM SIGMOD", "acm sigmod") == 1.0

    def test_token_jaccard_word_overlap(self):
        assert token_jaccard("big data", "big deal") == pytest.approx(1 / 3)
