"""Unit tests for the cache-key SQL canonicalizer."""

import pytest

from repro.sql import normalize_sql, parse


class TestNormalizeSql:
    def test_case_folds_keywords_and_identifiers(self):
        assert (
            normalize_sql("SELECT Dedup Id, TITLE FROM Papers")
            == "select dedup id,title from papers"
        )

    def test_collapses_whitespace(self):
        assert (
            normalize_sql("select \t dedup *\n  from   p")
            == "select dedup * from p"
        )

    def test_equal_queries_share_one_spelling(self):
        variants = [
            "SELECT DEDUP id , title FROM P WHERE venue = 'EDBT'",
            "select dedup id,title from p where venue='EDBT'",
            "Select Dedup ID, Title\nFROM p\nWHERE Venue = 'EDBT';",
        ]
        keys = {normalize_sql(sql) for sql in variants}
        assert keys == {"select dedup id,title from p where venue='EDBT'"}

    def test_literal_case_is_preserved(self):
        assert normalize_sql("SELECT * FROM P WHERE v = 'EDBT'").endswith("'EDBT'")
        # Literal case distinguishes predicates: these must NOT unify.
        assert normalize_sql("SELECT * FROM p WHERE v = 'a'") != normalize_sql(
            "SELECT * FROM p WHERE v = 'A'"
        )

    def test_literal_internal_whitespace_is_preserved(self):
        sql = "SELECT * FROM p WHERE v = 'two  spaces\tand tab'"
        assert "'two  spaces\tand tab'" in normalize_sql(sql)

    def test_escaped_quote_stays_inside_literal(self):
        # '' is an escaped quote: the AND is literal text, not a keyword.
        sql = "SELECT * FROM p WHERE v = 'it''s AND X'"
        assert "'it''s AND X'" in normalize_sql(sql)

    def test_adjacent_literals_keep_their_separator(self):
        assert normalize_sql("x 'a' 'b'") == "x 'a' 'b'"
        assert normalize_sql("x 'a''b'") == "x 'a''b'"

    def test_unterminated_literal_preserved_verbatim(self):
        assert normalize_sql("SELECT 'open WHERE x").endswith("'open WHERE x")

    def test_trailing_semicolons_stripped(self):
        assert normalize_sql("select * from p ;; ") == "select * from p"

    def test_punctuation_spacing_is_canonical(self):
        spellings = {
            normalize_sql("select a , b from p where x<3 and y = 'q'"),
            normalize_sql("select a,b from p where x < 3 and y='q'"),
        }
        assert len(spellings) == 1

    def test_idempotent(self):
        sql = "SELECT DEDUP a, b FROM p WHERE v = 'Mixed  Case';"
        once = normalize_sql(sql)
        assert normalize_sql(once) == once

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT DEDUP id, title FROM P WHERE venue = 'EDBT'",
            "SELECT COUNT(*) AS n FROM p",
            "INSERT INTO p (id, title) VALUES (9, 'X  y')",
            "EXPLAIN SELECT DEDUP id FROM p",
            "EXPLAIN ANALYZE SELECT id FROM p",
        ],
    )
    def test_normal_form_still_parses(self, sql):
        parse(normalize_sql(sql))


class TestExplainKeySeparation:
    """EXPLAIN must never share a cache key with the query it wraps.

    The serving result cache and the engine plan cache both key on
    ``normalize_sql`` output; if the EXPLAIN prefix were stripped, a
    plan dump could be served as a query answer (or vice versa).
    """

    QUERY = "SELECT DEDUP id, title FROM P WHERE venue = 'EDBT'"

    def test_explain_prefix_survives_normalization(self):
        assert normalize_sql("EXPLAIN " + self.QUERY).startswith("explain select")

    def test_explain_key_differs_from_query_key(self):
        assert normalize_sql("EXPLAIN " + self.QUERY) != normalize_sql(self.QUERY)

    def test_analyze_key_differs_from_plain_explain(self):
        assert normalize_sql("EXPLAIN ANALYZE " + self.QUERY) != normalize_sql(
            "EXPLAIN " + self.QUERY
        )

    def test_equal_explains_share_one_spelling(self):
        variants = {
            normalize_sql("EXPLAIN   Select Dedup ID, Title FROM p WHERE Venue='EDBT'"),
            normalize_sql("explain select dedup id,title from P where venue = 'EDBT';"),
        }
        assert len(variants) == 1
