"""Unit tests for the Deduplicate-Join operator (§6.2, Algs. 1–2)."""

import pytest

from repro.core.dedup_join import DeduplicateJoinOperator, JoinType
from repro.core.dedup_operator import DeduplicateOperator
from repro.core.indices import TableIndex
from repro.core.result import DedupResult
from repro.er.linkset import LinkSet
from repro.er.meta_blocking import MetaBlockingConfig
from repro.storage.schema import Schema
from repro.storage.table import Table


def papers():
    return Table(
        "P",
        Schema.of("id", "title", "venue"),
        [
            ("p1", "paper one about things", "edbt"),
            ("p2", "paper one about things!", "extending database tech"),
            ("p3", "unrelated work", "sigmod"),
        ],
    )


def venues():
    return Table(
        "V",
        Schema.of("id", "name", "rank"),
        [
            ("v1", "edbt", None),
            ("v2", "extending database tech", "1"),
            ("v3", "sigmod", "1"),
            ("v4", "unjoined venue", "2"),
        ],
    )


@pytest.fixture
def join_operator():
    indices = {
        "P": TableIndex(papers()),
        "V": TableIndex(venues()),
    }

    def factory(table):
        return DeduplicateOperator(
            indices[table.name], meta_blocking=MetaBlockingConfig.none()
        )

    return DeduplicateJoinOperator(papers(), venues(), "venue", "name", factory)


def left_clean():
    """p1 resolved with duplicate p2 (different venue spellings)."""
    return DedupResult(papers(), {"p1"}, {"p2"}, LinkSet([("p1", "p2")]))


class TestDirtyRight:
    def test_reduces_then_joins(self, join_operator):
        result = join_operator.execute(JoinType.DIRTY_RIGHT, left_clean(), {"v1", "v2", "v3", "v4"})
        joined_ids = {(l.id, r.id) for l, r in result.rows}
        # p1/p2 join v1/v2 via both venue spellings; v3/v4 discarded.
        assert joined_ids == {("p1", "v1"), ("p1", "v2"), ("p2", "v1"), ("p2", "v2")}

    def test_right_side_was_deduplicated(self, join_operator):
        result = join_operator.execute(JoinType.DIRTY_RIGHT, left_clean(), {"v1", "v2", "v3", "v4"})
        assert {"v1", "v2"} <= result.right.entity_ids
        assert "v4" not in result.right.entity_ids

    def test_value_tuples_concatenate_sides(self, join_operator):
        result = join_operator.execute(JoinType.DIRTY_RIGHT, left_clean(), {"v1"})
        assert all(len(t) == 6 for t in result.value_tuples())


class TestDirtyLeft:
    def test_mirrors_dirty_right(self, join_operator):
        right = DedupResult(venues(), {"v1"}, {"v2"}, LinkSet([("v1", "v2")]))
        result = join_operator.execute(JoinType.DIRTY_LEFT, {"p1", "p2", "p3"}, right)
        joined_ids = {(l.id, r.id) for l, r in result.rows}
        assert joined_ids == {("p1", "v1"), ("p1", "v2"), ("p2", "v1"), ("p2", "v2")}


class TestCleanBoth:
    def test_cluster_cartesian_product(self, join_operator):
        left = left_clean()
        right = DedupResult(venues(), {"v1", "v2"}, links=LinkSet([("v1", "v2")]))
        result = join_operator.execute(JoinType.CLEAN_BOTH, left, right)
        assert len(result.rows) == 4  # {p1,p2} × {v1,v2}

    def test_cluster_joins_when_any_member_joins(self, join_operator):
        # Only p1's venue value ('edbt') matches v1; p2 joins via cluster.
        left = left_clean()
        right = DedupResult(venues(), {"v1"}, links=LinkSet())
        result = join_operator.execute(JoinType.CLEAN_BOTH, left, right)
        joined_ids = {(l.id, r.id) for l, r in result.rows}
        assert joined_ids == {("p1", "v1"), ("p2", "v1")}

    def test_no_join_yields_empty(self, join_operator):
        left = DedupResult(papers(), {"p3"}, links=LinkSet())
        right = DedupResult(venues(), {"v4"}, links=LinkSet())
        result = join_operator.execute(JoinType.CLEAN_BOTH, left, right)
        assert len(result) == 0

    def test_null_join_values_ignored(self):
        t1 = Table("A", Schema.of("id", "k"), [("a1", None)])
        t2 = Table("B", Schema.of("id", "k"), [("b1", None)])
        op = DeduplicateJoinOperator(t1, t2, "k", "k", lambda t: None)
        result = op.join_operation(
            DedupResult(t1, {"a1"}), DedupResult(t2, {"b1"})
        )
        assert result == []

    def test_case_insensitive_join(self):
        t1 = Table("A", Schema.of("id", "k"), [("a1", "EDBT")])
        t2 = Table("B", Schema.of("id", "k"), [("b1", "edbt")])
        op = DeduplicateJoinOperator(t1, t2, "k", "k", lambda t: None)
        result = op.join_operation(DedupResult(t1, {"a1"}), DedupResult(t2, {"b1"}))
        assert len(result) == 1

    def test_unknown_join_type_rejected(self, join_operator):
        with pytest.raises(ValueError):
            join_operator.execute("bogus", left_clean(), set())
