"""Unit tests for the TBI/ITBI/QBI/LI indices."""

from repro.core.indices import LinkIndex, TableIndex
from repro.storage.schema import Schema
from repro.storage.table import Table


def small_table():
    return Table(
        "T",
        Schema.of("id", "title"),
        [
            ("e1", "alpha beta"),
            ("e2", "beta gamma"),
            ("e3", "gamma delta"),
            ("e4", "omega"),
        ],
    )


class TestTableIndex:
    def test_tbi_built_from_all_tokens(self):
        index = TableIndex(small_table())
        assert index.tbi.get("beta").entities == {"e1", "e2"}
        assert index.tbi.get("omega").entities == {"e4"}

    def test_id_column_excluded_from_blocking(self):
        index = TableIndex(small_table())
        assert index.tbi.get("e1") is None

    def test_itbi_lists_keys_ascending_by_block_size(self):
        index = TableIndex(small_table())
        keys = index.blocks_of("e1")
        assert set(keys) == {"alpha", "beta"}
        sizes = [index.tbi.get(k).size for k in keys]
        assert sizes == sorted(sizes)

    def test_qbi_subset_of_tbi(self):
        index = TableIndex(small_table())
        qbi = index.query_block_index(["e1"])
        assert set(qbi.keys()) <= set(index.tbi.keys())
        assert qbi.get("alpha").entities == {"e1"}

    def test_block_join_enriches_with_cooccurring_entities(self):
        index = TableIndex(small_table())
        qbi = index.query_block_index(["e1"])
        eqbi = index.block_join(qbi)
        assert eqbi.get("beta").entities == {"e1", "e2"}

    def test_block_join_ignores_keys_missing_from_tbi(self):
        index = TableIndex(small_table())
        qbi = index.query_block_index(["e1"])
        qbi.add("nonexistent", "e1")
        eqbi = index.block_join(qbi)
        assert eqbi.get("nonexistent") is None

    def test_block_count_matches_tbi(self):
        index = TableIndex(small_table())
        assert index.block_count == len(index.tbi)

    def test_unknown_entity_has_no_blocks(self):
        index = TableIndex(small_table())
        assert index.blocks_of("zz") == []
        assert len(index.query_block_index(["zz"])) == 0


class TestLinkIndex:
    def test_initially_empty(self):
        li = LinkIndex()
        assert not li.is_resolved("a")
        assert len(li) == 0

    def test_mark_resolved(self):
        li = LinkIndex()
        li.mark_resolved(["a", "b"])
        assert li.is_resolved("a")
        assert li.resolved_subset(["a", "x"]) == {"a"}

    def test_add_links_and_lookup(self):
        li = LinkIndex()
        li.add_links([("a", "b"), ("b", "c")])
        assert li.duplicates_of("b") == {"a", "c"}
        assert li.cluster_of("a") == {"a", "b", "c"}

    def test_resolved_without_links_means_no_duplicates(self):
        li = LinkIndex()
        li.mark_resolved(["solo"])
        assert li.is_resolved("solo")
        assert li.duplicates_of("solo") == set()

    def test_clear(self):
        li = LinkIndex()
        li.mark_resolved(["a"])
        li.add_links([("a", "b")])
        li.clear()
        assert not li.is_resolved("a")
        assert len(li) == 0

    def test_resolved_count(self):
        li = LinkIndex()
        li.mark_resolved(["a", "b", "a"])
        assert li.resolved_count == 2
