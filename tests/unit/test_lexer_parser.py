"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.sql import ast
from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse
from repro.sql.tokens import TokenType


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_case_preserved(self):
        tokens = tokenize("MyTable")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "MyTable"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42
        assert tokens[1].value == 3.14

    def test_multi_char_operators(self):
        tokens = tokenize("a <> b <= c >= d")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<>", "<=", ">="]

    def test_comments_skipped(self):
        tokens = tokenize("select -- comment\n1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", 1]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("select @")

    def test_dedup_is_a_keyword(self):
        assert tokenize("DEDUP")[0].type is TokenType.KEYWORD


class TestParserBasics:
    def test_simple_select(self):
        q = parse("SELECT a, b FROM t")
        assert [i.expr.name for i in q.items] == ["a", "b"]
        assert q.table.name == "t"
        assert not q.dedup

    def test_dedup_flag(self):
        assert parse("SELECT DEDUP a FROM t").dedup

    def test_distinct_flag(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_star(self):
        q = parse("SELECT * FROM t")
        assert isinstance(q.items[0].expr, ast.Star)

    def test_qualified_star(self):
        q = parse("SELECT p.* FROM pubs p")
        assert q.items[0].expr.qualifier == "p"

    def test_alias_with_and_without_as(self):
        q = parse("SELECT a AS x, b y FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_table_alias(self):
        q = parse("SELECT a FROM tbl AS t")
        assert q.table.binding == "t"

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_order_by(self):
        q = parse("SELECT a FROM t ORDER BY a DESC, b")
        assert q.order_by[0].ascending is False
        assert q.order_by[1].ascending is True

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t garbage extra")


class TestParserJoins:
    def test_inner_join(self):
        q = parse("SELECT a FROM t JOIN u ON t.x = u.y")
        assert len(q.joins) == 1
        assert q.joins[0].join_type == "INNER"

    def test_multiple_joins(self):
        q = parse("SELECT a FROM t JOIN u ON t.x = u.y JOIN v ON u.z = v.w")
        assert len(q.joins) == 2

    def test_left_join(self):
        q = parse("SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y")
        assert q.joins[0].join_type == "LEFT"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t JOIN u")


class TestParserExpressions:
    def test_precedence_or_and(self):
        q = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(q.where, ast.BooleanOp)
        assert q.where.op == "OR"

    def test_parentheses_override(self):
        q = parse("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert q.where.op == "AND"

    def test_in_list(self):
        q = parse("SELECT a FROM t WHERE s IN ('x', 'y')")
        assert isinstance(q.where, ast.InList)
        assert [v.value for v in q.where.values] == ["x", "y"]

    def test_not_in(self):
        q = parse("SELECT a FROM t WHERE s NOT IN ('x')")
        assert q.where.negated

    def test_like(self):
        q = parse("SELECT a FROM t WHERE s LIKE '%data%'")
        assert isinstance(q.where, ast.Like)

    def test_between(self):
        q = parse("SELECT a FROM t WHERE n BETWEEN 1 AND 5")
        assert isinstance(q.where, ast.Between)

    def test_is_null_and_is_not_null(self):
        q = parse("SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL")
        first, second = q.where.operands
        assert isinstance(first, ast.IsNull) and not first.negated
        assert isinstance(second, ast.IsNull) and second.negated

    def test_function_call(self):
        q = parse("SELECT a FROM t WHERE MOD(id, 10) < 1")
        cmp = q.where
        assert isinstance(cmp.left, ast.FunctionCall)
        assert cmp.left.name == "MOD"

    def test_unary_minus_folds_literal(self):
        q = parse("SELECT a FROM t WHERE x > -5")
        assert q.where.right.value == -5

    def test_bang_equals_normalized(self):
        q = parse("SELECT a FROM t WHERE x != 1")
        assert q.where.op == "<>"

    def test_arithmetic_precedence(self):
        q = parse("SELECT a FROM t WHERE x + 2 * 3 = 7")
        plus = q.where.left
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_string_roundtrip_through_str(self):
        sql = "SELECT DEDUP a, b FROM t JOIN u ON t.x = u.y WHERE t.s IN ('p', 'q') LIMIT 3"
        q1 = parse(sql)
        q2 = parse(str(q1))
        assert q1 == q2


class TestExplainParsing:
    def test_explain_wraps_a_select(self):
        stmt = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(stmt, ast.ExplainStatement)
        assert not stmt.analyze
        assert isinstance(stmt.statement, ast.SelectQuery)

    def test_explain_analyze_sets_flag(self):
        stmt = parse("EXPLAIN ANALYZE SELECT DEDUP a FROM t")
        assert stmt.analyze
        assert stmt.statement.dedup

    def test_explain_wraps_an_insert(self):
        stmt = parse("EXPLAIN INSERT INTO t (a) VALUES (1)")
        assert isinstance(stmt, ast.ExplainStatement)
        assert isinstance(stmt.statement, ast.InsertStatement)

    def test_explain_str_roundtrips(self):
        for sql in ("EXPLAIN SELECT a FROM t", "EXPLAIN ANALYZE SELECT a FROM t"):
            stmt = parse(sql)
            assert parse(str(stmt)) == stmt

    def test_nested_explain_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse("EXPLAIN EXPLAIN SELECT a FROM t")


class TestErrorPositions:
    """Satellite: lexer and parser errors carry position + source excerpt."""

    def test_parse_error_names_the_offending_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT a FROM t WHERE JOIN")
        message = str(excinfo.value)
        assert "'JOIN'" in message
        assert "position" in message

    def test_parse_error_shows_a_caret_excerpt(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT a FROM t WHERE x ==")
        message = str(excinfo.value)
        assert "\n" in message and "^" in message

    def test_parse_error_at_end_of_input(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT a FROM")
        assert "end of input" in str(excinfo.value)

    def test_lex_error_reports_position_and_excerpt(self):
        from repro.sql.lexer import LexError

        with pytest.raises(LexError) as excinfo:
            tokenize("select a from t where x = @bad")
        message = str(excinfo.value)
        assert "position" in message
        assert "^" in message

    def test_unterminated_string_points_at_the_quote(self):
        from repro.sql.lexer import LexError

        with pytest.raises(LexError) as excinfo:
            tokenize("select 'oops")
        assert "unterminated" in str(excinfo.value)
        assert "^" in str(excinfo.value)

    def test_long_input_excerpt_is_windowed(self):
        prefix = "SELECT " + ", ".join(f"col{i}" for i in range(40)) + " FROM t WHERE "
        with pytest.raises(ParseError) as excinfo:
            parse(prefix + "x ==")
        excerpt_line = str(excinfo.value).splitlines()[1]
        assert len(excerpt_line) < 120
        assert excerpt_line.lstrip().startswith("...")
