"""Teardown regression tests: no fd or process leak across engine lifecycles.

The persistent shard runtime holds one duplex pipe per worker, and each
forked worker inherits every parent-end pipe open at fork time.  Without
disciplined close-on-spawn/close-on-teardown this compounds: engine N's
workers would hold N-1 engines' pipe fds open, and dropping an engine
without ``close()`` would strand daemon workers.  These tests pin both
properties by counting ``/proc/self/fd`` (and live children) across many
create → query → close cycles.
"""

from __future__ import annotations

import gc
import multiprocessing
import os

import pytest

from repro.core.engine import QueryEREngine
from repro.parallel import ExecutionConfig, WorkerPool
from repro.parallel.config import fork_available
from repro.storage.schema import Schema
from repro.storage.table import Table

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork backend unavailable"
)
needs_procfs = pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc fd accounting"
)

SQL = "SELECT DEDUP id, title FROM pubs WHERE year >= 1990"


def make_table(n: int = 40) -> Table:
    rows = [
        (i, f"title about entity {i % 11} record", 1990 + (i % 20), f"venue {i % 3}")
        for i in range(n)
    ]
    rows += [
        (n + i, f"title about entity {i % 11} record", 1990 + (i % 20), f"venue {i % 3}")
        for i in range(0, n, 5)
    ]
    return Table("pubs", Schema.of("id", "title", "year", "venue"), rows)


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def live_children() -> int:
    return len(multiprocessing.active_children())


def _square(task):
    return task * task


def shard_config(workers: int = 2) -> ExecutionConfig:
    return ExecutionConfig(
        workers=workers,
        backend="process",
        persistent_shards=True,
        min_parallel_pairs=1,
        min_parallel_comparisons=1,
    )


@needs_fork
@needs_procfs
class TestShardTeardown:
    def test_many_engine_lifecycles_leak_no_fds(self):
        table_rows = [row.values for row in make_table()]
        schema = Schema.of("id", "title", "year", "venue")

        def cycle():
            engine = QueryEREngine(execution=shard_config())
            engine.register(Table("pubs", schema, list(table_rows)))
            engine.execute(SQL)
            assert engine.parallel_executor.shard_status()["alive"] == 2
            engine.close()

        cycle()  # warm interpreter-level one-time allocations
        gc.collect()
        baseline_fds = open_fds()
        baseline_children = live_children()
        for _ in range(8):
            cycle()
        gc.collect()
        assert live_children() == baseline_children
        # Strictly bounded: a per-cycle leak of even one fd would add 8+.
        assert open_fds() <= baseline_fds + 2

    def test_close_reaps_worker_processes(self):
        engine = QueryEREngine(execution=shard_config())
        engine.register(make_table())
        engine.execute(SQL)
        before = live_children()
        assert before >= 2
        engine.close()
        assert live_children() == before - 2

    def test_dropped_engine_finalizer_reaps_workers(self):
        engine = QueryEREngine(execution=shard_config())
        engine.register(make_table())
        engine.execute(SQL)
        assert live_children() >= 2
        baseline = live_children()
        del engine
        gc.collect()
        assert live_children() == baseline - 2

    def test_workers_do_not_hold_sibling_engine_pipes(self):
        """Two concurrent engines: closing A leaves B fully functional."""
        a = QueryEREngine(execution=shard_config())
        a.register(make_table())
        a.execute(SQL)
        b = QueryEREngine(execution=shard_config())
        b.register(make_table())
        b.execute(SQL)
        a.close()
        assert b.execute(SQL).rows
        assert b.parallel_executor.shard_status()["alive"] == 2
        b.close()


@needs_fork
@needs_procfs
class TestPoolTeardown:
    def test_per_query_pool_runs_leak_no_fds(self):
        """The forked per-query pool joins its children deterministically."""
        pool = WorkerPool(workers=2, backend="process")

        def run():
            results = pool.run(_square, [0, 1, 2, 3], payload=None)
            assert results == [0, 1, 4, 9]

        run()
        gc.collect()
        baseline = open_fds()
        for _ in range(6):
            run()
        gc.collect()
        assert live_children() == 0
        assert open_fds() <= baseline + 2
