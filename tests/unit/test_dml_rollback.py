"""Transactional DML: a failed INSERT leaves no trace (repro.incremental).

Faults are injected at each stage of the ingest pipeline — per-row
storage staging (``table.append_row``), index amendment
(``dml.after_append``, ``dml.index_delta``) and pre-epoch commit
(``dml.before_commit``) — and every test asserts the engine's observable
state (rows, TBI, ITBI, postings, epoch, signatures) equals the
pre-insert snapshot, exactly as if the INSERT had never been issued.
"""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEREngine
from repro.core.indices import TableIndex
from repro.datagen import generate_people
from repro.datagen.people import people_schema
from repro.incremental import IngestError
from repro.resilience import DEGRADATION, FaultError, FaultPlan, clear_plan, install_plan
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _isolated():
    clear_plan()
    DEGRADATION.clear()
    yield
    clear_plan()
    DEGRADATION.clear()


@pytest.fixture()
def people_split():
    """120 base rows + 6 insert-batch rows of one dirty people table."""
    table, _ = generate_people(126, seed=29, name="PPL")
    rows = [tuple(row.values) for row in table]
    return rows[:120], rows[120:]


def fresh_engine(rows) -> QueryEREngine:
    engine = QueryEREngine()
    engine.register(Table("PPL", people_schema(), rows))
    return engine


def state_of(engine: QueryEREngine, name: str = "PPL") -> dict:
    """Every piece of observable per-table state a rollback must restore."""
    index = engine.index_of(name)
    return {
        "rows": [tuple(row.values) for row in index.table],
        "tbi": {block.key: frozenset(block.entities) for block in index.tbi},
        "itbi": {k: tuple(v) for k, v in index.itbi.items()},
        "epoch": engine.epoch_of(name),
        "signatures": index.signature_count,
    }


SQL = "SELECT DEDUP id, surname FROM PPL WHERE state = 'nsw'"


def answer(engine: QueryEREngine):
    return sorted(map(tuple, engine.execute(SQL).rows), key=repr)


class TestRollbackRestoresState:
    @pytest.mark.parametrize(
        "site,stage",
        [
            ("dml.after_append", "index amendment"),
            ("dml.index_delta", "index amendment"),
            ("dml.before_commit", "commit"),
        ],
    )
    def test_mid_ingest_fault_rolls_back_to_snapshot(self, people_split, site, stage):
        base, extra = people_split
        engine = fresh_engine(base)
        before = state_of(engine)
        install_plan(FaultPlan().add(site))
        with pytest.raises(IngestError) as excinfo:
            engine.insert("PPL", extra)
        assert excinfo.value.stage == stage
        assert excinfo.value.rolled_back
        assert isinstance(excinfo.value.__cause__, FaultError)
        assert state_of(engine) == before
        assert any(e.site == "rollback" for e in DEGRADATION.events())

    def test_mid_batch_index_fault_undoes_partial_amendment(self, people_split):
        # Fire on the *third* entity of the batch: two records were fully
        # amended into TBI/ITBI before the crash and must be backed out.
        base, extra = people_split
        engine = fresh_engine(base)
        before = state_of(engine)
        install_plan(FaultPlan().add("dml.index_delta", after=2))
        with pytest.raises(IngestError):
            engine.insert("PPL", extra)
        assert state_of(engine) == before

    def test_storage_staging_fault_mutates_nothing(self, people_split):
        # table.append_row fires inside Table.append_rows' staging loop,
        # which is atomic on its own: the fault surfaces raw (no partial
        # append exists to roll back or wrap).
        base, extra = people_split
        engine = fresh_engine(base)
        before = state_of(engine)
        install_plan(FaultPlan().add("table.append_row", after=3))
        with pytest.raises(FaultError):
            engine.insert("PPL", extra)
        assert state_of(engine) == before

    def test_rollback_discards_then_rebuilds_postings(self, people_split):
        base, extra = people_split
        engine = fresh_engine(base)
        index = engine.index_of("PPL")
        assert index.postings.entity_count == len(base)  # materialize CSR
        install_plan(FaultPlan().add("dml.before_commit"))
        with pytest.raises(IngestError):
            engine.insert("PPL", extra)
        assert index.postings.entity_count == len(base)

    def test_sql_insert_path_rolls_back_too(self, people_split):
        base, _ = people_split
        engine = fresh_engine(base)
        before = state_of(engine)
        install_plan(FaultPlan().add("dml.before_commit"))
        with pytest.raises(IngestError):
            engine.execute(
                "INSERT INTO PPL (id, given_name) VALUES (999999, 'ghost')"
            )
        assert state_of(engine) == before


class TestRollbackEquivalence:
    def test_rolled_back_engine_answers_like_never_inserted(self, people_split):
        base, extra = people_split
        faulted = fresh_engine(base)
        install_plan(FaultPlan().add("dml.before_commit"))
        with pytest.raises(IngestError):
            faulted.insert("PPL", extra)
        clear_plan()
        assert answer(faulted) == answer(fresh_engine(base))

    def test_retry_after_rollback_equals_grown_fresh_engine(self, people_split):
        base, extra = people_split
        faulted = fresh_engine(base)
        install_plan(FaultPlan().add("dml.index_delta"))
        with pytest.raises(IngestError):
            faulted.insert("PPL", extra)
        clear_plan()
        result = faulted.insert("PPL", extra)  # the client's retry
        assert result.inserted == len(extra)
        assert faulted.epoch_of("PPL") == 2  # register + one committed batch
        assert answer(faulted) == answer(fresh_engine(base + extra))


class TestIndexDeltaAtomicity:
    def test_add_records_failure_leaves_index_untouched(self, people_split):
        base, extra = people_split
        table = Table("PPL", people_schema(), base)
        index = TableIndex(table)
        tbi_before = {b.key: frozenset(b.entities) for b in index.tbi}
        itbi_before = {k: tuple(v) for k, v in index.itbi.items()}
        appended = table.append_rows(extra)
        install_plan(FaultPlan().add("dml.index_delta", after=2))
        with pytest.raises(FaultError):
            index.add_records([row.id for row in appended])
        assert {b.key: frozenset(b.entities) for b in index.tbi} == tbi_before
        assert {k: tuple(v) for k, v in index.itbi.items()} == itbi_before

    def test_remove_records_reverses_add_records(self, people_split):
        base, extra = people_split
        table = Table("PPL", people_schema(), base)
        index = TableIndex(table)
        tbi_before = {b.key: frozenset(b.entities) for b in index.tbi}
        itbi_before = {k: tuple(v) for k, v in index.itbi.items()}
        appended = table.append_rows(extra)
        delta = index.add_records([row.id for row in appended])
        assert delta.affected_ids  # the batch really amended something
        index.remove_records(delta)
        assert {b.key: frozenset(b.entities) for b in index.tbi} == tbi_before
        assert {k: tuple(v) for k, v in index.itbi.items()} == itbi_before
