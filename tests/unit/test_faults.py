"""Unit tests of the fault-injection registry (repro.resilience.faults)."""

from __future__ import annotations

import time

import pytest

from repro.resilience import (
    DEGRADATION,
    FaultError,
    FaultPlan,
    active,
    active_plan,
    clear_plan,
    inject,
    install_plan,
    plan_from_env,
)


@pytest.fixture(autouse=True)
def _isolated():
    clear_plan()
    DEGRADATION.clear()
    yield
    clear_plan()
    DEGRADATION.clear()


class TestFaultPlanBasics:
    def test_disarmed_inject_is_a_no_op(self):
        assert active_plan() is None
        inject("anything.at.all")  # must not raise

    def test_single_shot_default(self):
        plan = install_plan(FaultPlan().add("x"))
        with pytest.raises(FaultError) as excinfo:
            inject("x")
        assert excinfo.value.site == "x"
        assert excinfo.value.occurrence == 1
        inject("x")  # times=1 exhausted: silent from now on
        assert plan.fired_count("x") == 1

    def test_times_bound_and_inf(self):
        install_plan(FaultPlan().add("x", times=3).add("y", times=None))
        for _ in range(3):
            with pytest.raises(FaultError):
                inject("x")
        inject("x")
        for _ in range(10):
            with pytest.raises(FaultError):
                inject("y")

    def test_after_skips_leading_calls(self):
        plan = install_plan(FaultPlan().add("x", after=2, times=1))
        inject("x")
        inject("x")
        with pytest.raises(FaultError) as excinfo:
            inject("x")
        assert excinfo.value.occurrence == 1
        assert plan.spec("x").calls == 3

    def test_unarmed_site_never_fires(self):
        install_plan(FaultPlan().add("x"))
        inject("some.other.site")  # silent

    def test_hang_sleeps_instead_of_raising(self):
        install_plan(FaultPlan().add("x", kind="hang", delay=0.05))
        start = time.monotonic()
        inject("x")
        assert time.monotonic() - start >= 0.04

    def test_events_record_firing_order(self):
        plan = install_plan(FaultPlan().add("a", times=2).add("b"))
        for site in ("a", "b", "a"):
            with pytest.raises(FaultError):
                inject(site)
        assert plan.events == [("a", "raise", 1), ("b", "raise", 1), ("a", "raise", 2)]
        assert plan.fired_count() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().add("x", kind="explode")
        with pytest.raises(ValueError):
            FaultPlan().add("x", times=-1)
        with pytest.raises(ValueError):
            FaultPlan().add("x", probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan().add("x", delay=-0.1)
        with pytest.raises(ValueError):
            FaultPlan().add("x", after=-1)


class TestProbabilisticFiring:
    def test_probability_is_seed_deterministic(self):
        def firings(seed: int) -> list:
            plan = FaultPlan(seed=seed).add("x", probability=0.5, times=None)
            fired = []
            with active(plan):
                for i in range(50):
                    try:
                        inject("x")
                        fired.append(False)
                    except FaultError:
                        fired.append(True)
            return fired

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)  # astronomically unlikely to tie
        assert any(firings(7)) and not all(firings(7))

    def test_probability_zero_never_fires(self):
        with active(FaultPlan().add("x", probability=0.0, times=None)):
            for _ in range(20):
                inject("x")


class TestPlanParsing:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse(
            "seed=9,pool.task:times=2,serving.slow:hang:delay=0.3,"
            "dml.index_delta:p=0.25:after=1:times=inf"
        )
        assert plan.seed == 9
        assert plan.sites == ["dml.index_delta", "pool.task", "serving.slow"]
        assert plan.spec("pool.task").times == 2
        slow = plan.spec("serving.slow")
        assert slow.kind == "hang" and slow.delay == 0.3
        dml = plan.spec("dml.index_delta")
        assert dml.probability == 0.25 and dml.after == 1 and dml.times is None

    def test_parse_kind_as_key(self):
        assert FaultPlan.parse("x:kind=hang").spec("x").kind == "hang"

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("x:notakeyvalue")
        with pytest.raises(ValueError):
            FaultPlan.parse("x:frequency=2")

    def test_parse_ignores_empty_specs(self):
        assert FaultPlan.parse("x, ,").sites == ["x"]

    def test_env_plan(self):
        environ = {"REPRO_FAULTS": "pool.task:times=3", "REPRO_FAULTS_SEED": "11"}
        plan = plan_from_env(environ)
        assert plan is not None
        assert plan.seed == 11
        assert plan.spec("pool.task").times == 3
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": ""}) is None


class TestInstallation:
    def test_active_context_restores_previous_plan(self):
        outer = install_plan(FaultPlan().add("outer"))
        with active(FaultPlan().add("inner")):
            inject("outer")  # inner plan armed: outer site silent
            with pytest.raises(FaultError):
                inject("inner")
        assert active_plan() is outer
        with pytest.raises(FaultError):
            inject("outer")

    def test_clear_plan_disarms(self):
        install_plan(FaultPlan().add("x"))
        clear_plan()
        inject("x")
        assert active_plan() is None
