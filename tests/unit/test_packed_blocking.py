"""Unit tests for the columnar blocking fast path and its satellites:
CSR token postings, vectorized purge/filter, the packed candidate
pipeline, the tokenizer's optional numeric filter, cheap block copies
and the CLI ``--profile`` breakdown."""

import io

import numpy as np
import pytest

from repro.cli import run
from repro.core.indices import TableIndex
from repro.datagen import generate_dsd
from repro.er.block_purging import block_purging, purge_threshold
from repro.er.blocking import Block, BlockCollection, NGramBlocking, TokenBlocking, TokenPostings
from repro.er.meta_blocking import MetaBlockingConfig
from repro.er.packed_blocking import derive_candidates, packed_blocking_supported
from repro.er.tokenizer import TokenVocabulary, tokenize_entity, tokenize_value
from repro.parallel.planner import PartitionPlanner
from repro.storage.csv_io import write_csv
from repro.storage.schema import Schema
from repro.storage.table import Table


def small_table():
    return Table(
        "T",
        Schema.of("id", "title"),
        [
            ("e1", "alpha beta"),
            ("e2", "beta gamma"),
            ("e3", "gamma delta"),
            ("e4", "omega"),
        ],
    )


class TestTokenizerNumericFilter:
    def test_default_keeps_short_numeric_tokens(self):
        """No numeric-specific rule by default (the documented behavior)."""
        assert tokenize_value("page 42 of 2024") == ["page", "42", "of", "2024"]

    def test_numeric_min_length_drops_short_numbers_only(self):
        tokens = tokenize_value("suite 42 on road 66a, est 1999", numeric_min_length=4)
        assert "42" not in tokens and "66" not in tokens
        assert "1999" in tokens  # long enough
        assert "66a" in tokens  # not purely numeric
        assert "suite" in tokens and "road" in tokens

    def test_min_length_still_applies_to_numerics(self):
        # numeric_min_length below min_length cannot resurrect tokens.
        assert tokenize_value("a 7 bb", min_length=2, numeric_min_length=1) == ["bb"]

    def test_entity_and_blocking_pass_through(self):
        attributes = {"name": "unit 9", "year": 1987}
        default = tokenize_entity(attributes)
        filtered = tokenize_entity(attributes, numeric_min_length=3)
        assert default == {"unit", "1987"}
        assert filtered == {"unit", "1987"}
        blocking = TokenBlocking(numeric_min_length=5)
        assert blocking.keys_for(attributes) == {"unit"}
        ngram = NGramBlocking(n=3, numeric_min_length=5)
        assert "198" not in ngram.keys_for(attributes)


class TestBlockCopy:
    def test_copy_shares_no_mutable_state(self):
        block = Block("k", ("a", "b"))
        clone = block.copy()
        clone.add("c")
        assert block.entities == {"a", "b"}
        assert clone.entities == {"a", "b", "c"}

    def test_purging_result_does_not_alias_input(self):
        """Satellite regression: mutating the purged copy (or the input)
        never leaks through to the other collection."""
        collection = BlockCollection()
        for key, entity in [("x", 1), ("x", 2), ("y", 2), ("y", 3)]:
            collection.add(key, entity)
        purged = block_purging(collection)
        assert len(purged) > 0
        for block in purged:
            block.add(999)
        for block in collection:
            assert 999 not in block.entities
        collection.get("x").add(777)
        assert 777 not in purged.get("x").entities


class TestTokenPostings:
    def build(self, table):
        index = TableIndex(table)
        return index, index.postings

    def test_postings_mirror_tbi(self):
        index, postings = self.build(small_table())
        assert postings.entity_count == 4
        assert postings.assignment_count == index.tbi.total_assignments
        for key in index.tbi.keys():
            token_id = index.vocabulary.id_of(key)
            _, members = postings.members_of(np.array([token_id]))
            ids = set(postings.entity_ids_of(members))
            assert ids == index.tbi.get(key).entities
            assert int(postings.sizes_of(np.array([token_id]))[0]) == len(ids)

    def test_dense_frontier_skips_unknown_ids(self):
        _, postings = self.build(small_table())
        dense = postings.dense_frontier(["e2", "missing", "e1"])
        assert postings.entity_ids_of(dense) == ["e1", "e2"]

    def test_tokens_of_entities_union(self):
        index, postings = self.build(small_table())
        dense = postings.dense_frontier(["e1", "e2"])
        tokens = {index.vocabulary.token_of(t) for t in postings.tokens_of_entities(dense).tolist()}
        assert tokens == {"alpha", "beta", "gamma"}

    def test_pending_delta_then_compaction(self):
        """Appends stay pending (no rebuild), reads see them, compaction
        folds them in without changing any observable."""
        _, postings = self.build(small_table())
        postings.add_entity("e5", {"beta", "zeta"})
        assert postings._pending_count == 2  # delta recorded, base untouched
        beta = postings.vocabulary.id_of("beta")
        zeta = postings.vocabulary.id_of("zeta")
        _, members = postings.members_of(np.array([beta, zeta]))
        before = set(postings.entity_ids_of(members))
        assert before == {"e1", "e2", "e5"}
        postings.compact()
        assert postings._pending_count == 0
        _, members = postings.members_of(np.array([beta, zeta]))
        assert set(postings.entity_ids_of(members)) == before

    def test_duplicate_entity_rejected(self):
        _, postings = self.build(small_table())
        with pytest.raises(ValueError):
            postings.add_entity("e1", {"alpha"})

    def test_build_standalone(self):
        postings = TokenPostings.build(
            [("a", {"t1", "t2"}), ("b", {"t2"}), ("c", ())], TokenVocabulary()
        )
        assert postings.entity_count == 3
        assert postings.assignment_count == 3
        t2 = postings.vocabulary.id_of("t2")
        _, members = postings.members_of(np.array([t2]))
        assert set(postings.entity_ids_of(members)) == {"a", "b"}


class TestPackedPipeline:
    def test_supported_gating(self):
        assert packed_blocking_supported(MetaBlockingConfig.all())
        assert not packed_blocking_supported(
            MetaBlockingConfig(packed_blocking=False)
        )
        # Unpacked graph → the array pipeline has nothing to feed spans to.
        assert not packed_blocking_supported(MetaBlockingConfig(packed_graph=False))
        assert packed_blocking_supported(
            MetaBlockingConfig(pruning=False, packed_graph=False)
        )

    def test_derive_matches_dict_stats(self):
        table, _ = generate_dsd(150, seed=3)
        index = TableIndex(table)
        frontier = {row.id for row in table if row.id % 5 == 0}
        derived = derive_candidates(
            index.postings, frontier, MetaBlockingConfig.all()
        )
        qbi = index.query_block_index(frontier)
        eqbi = index.block_join(qbi)
        assert derived.qbi_blocks == len(qbi)
        assert derived.eqbi_blocks == len(eqbi)
        assert derived.comparisons_before == eqbi.cardinality
        assert derived.comparisons_after == len(derived.pairs)
        assert all(left != right for left, right in derived.pairs)

    def test_empty_frontier(self):
        table, _ = generate_dsd(60, seed=5)
        index = TableIndex(table)
        derived = derive_candidates(index.postings, set(), MetaBlockingConfig.all())
        assert derived.pairs == []
        assert derived.qbi_blocks == 0

    def test_purge_threshold_reported_for_eqbi(self):
        table, _ = generate_dsd(150, seed=3)
        index = TableIndex(table)
        frontier = {row.id for row in table if row.id % 5 == 0}
        eqbi = index.block_join(index.query_block_index(frontier)).non_singleton()
        from repro.er.block_purging import purge_threshold_from_sizes

        sizes = np.array([b.size for b in eqbi], dtype=np.int64)
        assert purge_threshold_from_sizes(sizes) == purge_threshold(eqbi)


class TestPartitionCosts:
    def test_costs_twin_matches_blocks(self):
        blocks = [Block(f"k{i}", range(i % 7)) for i in range(40)]
        planner = PartitionPlanner(workers=3)
        by_blocks = planner.partition_blocks(blocks)
        by_costs = planner.partition_costs(
            [max(1, b.cardinality) for b in blocks]
        )
        assert by_blocks == by_costs

    def test_empty_costs(self):
        assert PartitionPlanner(workers=2).partition_costs([]) == []


class TestCliProfile:
    @pytest.fixture
    def csv_path(self, tmp_path):
        table, _ = generate_dsd(80, seed=21)
        path = tmp_path / "papers.csv"
        write_csv(table, path)
        return path

    def test_profile_prints_stage_breakdown(self, csv_path):
        out = io.StringIO()
        code = run(
            [
                "SELECT DEDUP id, venue FROM papers WHERE venue = 'edbt'",
                "--csv",
                str(csv_path),
                "--profile",
            ],
            output=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Per-stage breakdown" in text
        assert "resolution" in text
        assert "%" in text and "total" in text

    def test_profile_on_plain_query_shows_scan_time(self, csv_path):
        out = io.StringIO()
        code = run(
            ["SELECT id FROM papers LIMIT 2", "--csv", str(csv_path), "--profile"],
            output=out,
        )
        assert code == 0
        # Relational queries only record scan/materialization time.
        assert "Per-stage breakdown" in out.getvalue()
        assert "other" in out.getvalue()
