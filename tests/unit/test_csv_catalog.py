"""Unit tests for CSV I/O and the catalog."""

import pytest

from repro.storage.catalog import Catalog, TableNotFoundError
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table(
        "people",
        Schema.of("id", "name", "note"),
        [("1", "ann", "likes, commas"), ("2", "bob", None), ("3", 'quo"te', "x")],
    )


class TestCsvRoundtrip:
    def test_roundtrip_preserves_values(self, table, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.schema.names == ["id", "name", "note"]
        assert [r.values for r in back] == [
            ("1", "ann", "likes, commas"),
            ("2", "bob", None),  # empty string reads back as None
            ("3", 'quo"te', "x"),
        ]

    def test_table_name_defaults_to_stem(self, table, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(table, path)
        assert read_csv(path).name == "people"

    def test_explicit_name_and_id_column(self, table, tmp_path):
        path = tmp_path / "p.csv"
        write_csv(table, path)
        loaded = read_csv(path, name="P", id_column="id")
        assert loaded.name == "P"
        assert loaded.schema.id_column == "id"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,name\n1,ann,extra\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("id,name\n1,ann\n\n2,bob\n")
        assert len(read_csv(path)) == 2


class TestTypedRoundtrip:
    """A typed schema survives write → read → write → read unchanged."""

    @pytest.fixture
    def typed_schema(self):
        return Schema(
            [
                Column("id", ColumnType.INTEGER),
                Column("name", ColumnType.STRING),
                Column("score", ColumnType.FLOAT),
                Column("active", ColumnType.BOOLEAN),
            ],
            id_column="id",
        )

    @pytest.fixture
    def typed_table(self, typed_schema):
        return Table(
            "measures",
            typed_schema,
            [
                (1, "ann", 0.5, True),
                (2, "bob", None, False),
                (3, "cho", -2.25, None),
            ],
        )

    def test_typed_values_round_trip(self, typed_table, typed_schema, tmp_path):
        path = tmp_path / "measures.csv"
        write_csv(typed_table, path)
        once = read_csv(path, schema=typed_schema)
        assert [r.values for r in once] == [r.values for r in typed_table]
        # And again: the reloaded table re-serializes identically.
        again_path = tmp_path / "measures2.csv"
        write_csv(once, again_path)
        twice = read_csv(again_path, schema=typed_schema)
        assert [r.values for r in twice] == [r.values for r in typed_table]

    def test_typed_read_coerces_from_text(self, typed_schema, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("id,name,score,active\n7,dee,1.5,true\n8,eli,2,0\n")
        loaded = read_csv(path, schema=typed_schema)
        assert [r.values for r in loaded] == [
            (7, "dee", 1.5, True),
            (8, "eli", 2.0, False),
        ]
        assert loaded.schema.columns[0].type is ColumnType.INTEGER

    def test_streaming_read_reports_ragged_line_number(self, typed_schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,name,score,active\n1,ann,0.5,true\n2,bob\n")
        with pytest.raises(ValueError, match=":3"):
            read_csv(path, schema=typed_schema)


class TestCatalog:
    def test_register_and_get(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.get("PEOPLE") is table

    def test_duplicate_registration_rejected(self, table):
        catalog = Catalog()
        catalog.register(table)
        with pytest.raises(ValueError):
            catalog.register(table)

    def test_replace_allows_overwrite(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.register(table, replace=True)
        assert "people" in catalog

    def test_unknown_table_raises(self):
        with pytest.raises(TableNotFoundError):
            Catalog().get("nope")

    def test_unregister_is_idempotent(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.unregister("people")
        catalog.unregister("people")
        assert "people" not in catalog

    def test_names_preserve_casing(self):
        catalog = Catalog()
        catalog.register(Table("MyTable", Schema.of("id"), [("1",)]))
        assert catalog.names() == ["MyTable"]
