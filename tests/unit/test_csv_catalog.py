"""Unit tests for CSV I/O and the catalog."""

import pytest

from repro.storage.catalog import Catalog, TableNotFoundError
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.schema import Schema
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table(
        "people",
        Schema.of("id", "name", "note"),
        [("1", "ann", "likes, commas"), ("2", "bob", None), ("3", 'quo"te', "x")],
    )


class TestCsvRoundtrip:
    def test_roundtrip_preserves_values(self, table, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.schema.names == ["id", "name", "note"]
        assert [r.values for r in back] == [
            ("1", "ann", "likes, commas"),
            ("2", "bob", None),  # empty string reads back as None
            ("3", 'quo"te', "x"),
        ]

    def test_table_name_defaults_to_stem(self, table, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(table, path)
        assert read_csv(path).name == "people"

    def test_explicit_name_and_id_column(self, table, tmp_path):
        path = tmp_path / "p.csv"
        write_csv(table, path)
        loaded = read_csv(path, name="P", id_column="id")
        assert loaded.name == "P"
        assert loaded.schema.id_column == "id"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,name\n1,ann,extra\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("id,name\n1,ann\n\n2,bob\n")
        assert len(read_csv(path)) == 2


class TestCatalog:
    def test_register_and_get(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.get("PEOPLE") is table

    def test_duplicate_registration_rejected(self, table):
        catalog = Catalog()
        catalog.register(table)
        with pytest.raises(ValueError):
            catalog.register(table)

    def test_replace_allows_overwrite(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.register(table, replace=True)
        assert "people" in catalog

    def test_unknown_table_raises(self):
        with pytest.raises(TableNotFoundError):
            Catalog().get("nope")

    def test_unregister_is_idempotent(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.unregister("people")
        catalog.unregister("people")
        assert "people" not in catalog

    def test_names_preserve_casing(self):
        catalog = Catalog()
        catalog.register(Table("MyTable", Schema.of("id"), [("1",)]))
        assert catalog.names() == ["MyTable"]
