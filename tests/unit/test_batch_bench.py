"""Unit tests for the batch baseline and the bench substrate."""

import pytest

from repro.bench.datasets import BASE_SIZES, DatasetRegistry
from repro.bench.harness import Measurement, fresh_engine, run_query
from repro.bench.reporting import format_table
from repro.bench.workload import (
    SELECTIVITIES,
    join_query,
    q9_query,
    range_queries,
    sp_queries,
)
from repro.core.batch import batch_deduplicate
from repro.core.indices import TableIndex
from repro.er.meta_blocking import MetaBlockingConfig
from repro.sql.parser import parse
from repro.sql.physical import ExecutionContext
from repro.storage.schema import Schema
from repro.storage.table import Table


def dirty_table():
    return Table(
        "T",
        Schema.of("id", "name", "city"),
        [
            ("r1", "jonathan smith", "berlin"),
            ("r2", "jonathan smyth", "berlin"),
            ("r3", "maria garcia", "athens"),
            ("r4", "ulrich zimmer", "oslo"),
        ],
    )


class TestBatchDeduplicate:
    def test_finds_all_duplicates(self):
        result = batch_deduplicate(
            TableIndex(dirty_table()), meta_blocking=MetaBlockingConfig.none()
        )
        assert ("r1", "r2") in result.links
        assert result.query_ids == set(dirty_table().ids)

    def test_counts_comparisons(self):
        context = ExecutionContext()
        batch_deduplicate(
            TableIndex(dirty_table()),
            meta_blocking=MetaBlockingConfig.none(),
            context=context,
        )
        assert context.comparisons > 0

    def test_stage_times_recorded(self):
        context = ExecutionContext()
        batch_deduplicate(TableIndex(dirty_table()), context=context)
        assert "resolution" in context.stage_times


class TestWorkload:
    def test_sp_queries_parse_and_range_selectivity(self):
        for family in ("PPL", "OAGP", "OAP", "DSD"):
            queries = sp_queries(family)
            assert [q.qid for q in queries] == ["Q1", "Q2", "Q3", "Q4", "Q5"]
            assert [q.selectivity for q in queries] == list(SELECTIVITIES)
            for q in queries:
                parsed = parse(q.sql)
                assert parsed.dedup

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            sp_queries("NOPE")

    def test_q9_uses_mod(self):
        q = q9_query("PPL")
        assert "MOD(id, 10) < 1" in q.sql
        parse(q.sql)

    def test_range_queries_overlap_and_grow(self):
        queries = range_queries("OAGP", table_size=1000)
        assert [q.qid for q in queries] == ["Q10", "Q11", "Q12", "Q13"]
        uppers = [int(q.sql.rsplit("<= ", 1)[1]) for q in queries]
        assert uppers == sorted(uppers)
        for q in queries:
            parse(q.sql)

    def test_join_queries_parse(self):
        for pair in ("PPL-OAO", "OAP-OAO", "OAGP-OAGV"):
            q = join_query(pair, "Q6", 0.07)
            parsed = parse(q.sql)
            assert parsed.dedup and len(parsed.joins) == 1

    def test_join_query_full_selectivity_has_no_where(self):
        q = join_query("PPL-OAO", "Q7", 1.0)
        assert "WHERE" not in q.sql


class TestDatasetRegistry:
    def test_caches_builds(self):
        registry = DatasetRegistry(scale=0.05)
        first = registry.table("OAO")
        second = registry.table("OAO")
        assert first is second

    def test_all_paper_datasets_defined(self):
        expected = {
            "DSD", "OAO", "OAP", "OAGV",
            "PPL200K", "PPL500K", "PPL1M", "PPL1.5M", "PPL2M",
            "OAGP200K", "OAGP500K", "OAGP1M", "OAGP1.5M", "OAGP2M",
        }
        assert expected == set(BASE_SIZES)

    def test_scaling_applies(self):
        registry = DatasetRegistry(scale=0.1)
        assert registry.size_of("PPL2M") == 200

    def test_minimum_size_floor(self):
        registry = DatasetRegistry(scale=0.0001)
        assert registry.size_of("PPL200K") == 30

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            DatasetRegistry().get("XX")

    def test_family_table_names(self):
        registry = DatasetRegistry(scale=0.05)
        assert registry.table("PPL200K").name == "PPL"
        assert registry.table("OAGP200K").name == "OAGP"


class TestHarness:
    def test_run_query_measures(self):
        registry = DatasetRegistry(scale=0.1)
        engine = fresh_engine([registry.get("OAO")])
        q = sp_queries("PPL")[0]  # reuse clause shape; run simple SQL instead
        measurement = run_query(
            engine, "Q1", "OAO", "SELECT DEDUP id, name FROM OAO", "aes"
        )
        assert isinstance(measurement, Measurement)
        assert measurement.total_time > 0
        assert measurement.rows > 0

    def test_breakdown_percentages_sum_to_100(self):
        m = Measurement("Q1", "D", "aes", 1.0, 10, 5, {"a": 0.25, "b": 0.75})
        assert sum(m.breakdown_percentages().values()) == pytest.approx(100.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bbbb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestRunSeries:
    def test_query_mode_sweep(self):
        from repro.bench.harness import run_series
        from repro.bench.workload import WorkloadQuery

        registry = DatasetRegistry(scale=0.1)
        engine = fresh_engine([registry.get("OAO")])
        queries = [
            WorkloadQuery("Q1", "SELECT DEDUP id FROM OAO WHERE country = 'greece'", 0.1),
            WorkloadQuery("Q2", "SELECT DEDUP id FROM OAO", 1.0),
        ]
        measurements = run_series(engine, "OAO", queries, ["aes", "batch"])
        assert len(measurements) == 4
        assert {(m.qid, m.mode) for m in measurements} == {
            ("Q1", "aes"), ("Q1", "batch"), ("Q2", "aes"), ("Q2", "batch"),
        }
