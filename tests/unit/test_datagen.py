"""Unit tests for dataset generators and ground truth."""

import pytest

from repro.datagen.ground_truth import GroundTruth
from repro.datagen.organizations import generate_organizations, generate_projects
from repro.datagen.people import generate_people, state_in_clause
from repro.datagen.scholarly import generate_dsd, generate_oagp, generate_oagv
from repro.datagen import freq_tables as ft


class TestGroundTruth:
    def test_pairs_from_cluster(self):
        truth = GroundTruth()
        truth.add_original("a")
        truth.add_duplicate("a", "b")
        truth.add_duplicate("a", "c")
        assert truth.pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_clusters_excludes_singletons(self):
        truth = GroundTruth()
        truth.add_original("solo")
        truth.add_original("a")
        truth.add_duplicate("a", "b")
        assert truth.clusters() == [{"a", "b"}]

    def test_pairs_within(self):
        truth = GroundTruth()
        truth.add_duplicate("a", "b")
        truth.add_duplicate("x", "y")
        assert truth.pairs_within({"a", "b", "x"}) == {("a", "b")}

    def test_cluster_of_unknown(self):
        assert GroundTruth().cluster_of("q") == {"q"}

    def test_linkset_matches_pairs(self):
        truth = GroundTruth()
        truth.add_duplicate("a", "b")
        assert set(truth.linkset()) == truth.pairs()


class TestPeopleGenerator:
    def test_exact_size(self):
        table, _ = generate_people(120, seed=1)
        assert len(table) == 120

    def test_duplicate_fraction(self):
        table, truth = generate_people(500, duplicate_fraction=0.4, seed=2)
        duplicate_rows = sum(len(c) - 1 for c in truth.clusters())
        assert duplicate_rows == pytest.approx(200, abs=5)

    def test_max_duplicates_per_record(self):
        _, truth = generate_people(400, max_duplicates_per_record=3, seed=3)
        assert all(len(c) <= 4 for c in truth.clusters())

    def test_deterministic(self):
        a, _ = generate_people(50, seed=9)
        b, _ = generate_people(50, seed=9)
        assert [r.values for r in a] == [r.values for r in b]

    def test_ids_are_integers(self):
        table, _ = generate_people(10, seed=0)
        assert all(isinstance(r.id, int) for r in table)

    def test_protected_attributes_preserved_in_duplicates(self):
        table, truth = generate_people(300, seed=4)
        for cluster in truth.clusters():
            states = {table.by_id(e)["state"] for e in cluster}
            assert len(states) == 1

    def test_organisation_assignment(self):
        table, _ = generate_people(50, organisations=["org a", "org b"], seed=5)
        assert all(r["organisation"] in ("org a", "org b") for r in table)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_people(0)
        with pytest.raises(ValueError):
            generate_people(10, duplicate_fraction=1.0)

    def test_state_in_clause_selectivity(self):
        table, _ = generate_people(2000, seed=6)
        clause = state_in_clause(0.2)
        states = {s.strip("' ") for s in clause.split("(")[1].rstrip(")").split(",")}
        fraction = sum(1 for r in table if r["state"] in states) / len(table)
        assert fraction == pytest.approx(0.2, abs=0.06)

    def test_state_in_clause_validation(self):
        with pytest.raises(ValueError):
            state_in_clause(0.0)


class TestOrganizationGenerators:
    def test_org_duplicate_rate(self):
        _, truth = generate_organizations(400, seed=7)
        duplicate_rows = sum(len(c) - 1 for c in truth.clusters())
        assert duplicate_rows == pytest.approx(40, abs=3)

    def test_projects_join_fraction(self):
        oao, _ = generate_organizations(100, seed=8)
        names = [r["name"] for r in oao]
        oap, _ = generate_projects(300, organisations=names, join_fraction=0.8, seed=9)
        joined = sum(1 for r in oap if r["organisation"] in set(names))
        assert joined / len(oap) == pytest.approx(0.8, abs=0.1)

    def test_projects_require_organisations(self):
        with pytest.raises(ValueError):
            generate_projects(10, organisations=[])

    def test_schemas(self):
        oao, _ = generate_organizations(10, seed=1)
        assert len(oao.schema) == 4  # id + 3 attributes (Table 7: |A|=3)
        oap, _ = generate_projects(10, organisations=["x"], seed=1)
        assert len(oap.schema) == 9  # id + 8 attributes (Table 7: |A|=8)


class TestScholarlyGenerators:
    def test_dsd_has_cross_source_duplicates(self):
        table, truth = generate_dsd(200, seed=10)
        assert len(table) == 200
        assert truth.duplicate_count > 20
        # Duplicate records use the full venue spelling.
        cluster = max(truth.clusters(), key=len)
        venues = {table.by_id(e)["venue"] for e in cluster}
        assert len(venues) == 2

    def test_oagv_titles_unique(self):
        table, _ = generate_oagv(130, seed=11)
        titles = [r["title"] for r in table]
        assert len(titles) == len(set(titles))

    def test_oagp_schema_width(self):
        table, _ = generate_oagp(50, seed=12)
        assert len(table.schema) == 19  # id + 18 attributes (Table 7: |A|=18)

    def test_oagp_join_fraction(self):
        oagv, _ = generate_oagv(130, seed=13)
        titles = [r["title"] for r in oagv]
        oagp, _ = generate_oagp(400, venue_titles=titles, join_fraction=0.5, seed=14)
        joined = sum(1 for r in oagp if r["venue"] in set(titles))
        assert joined / len(oagp) == pytest.approx(0.5, abs=0.1)

    def test_field_weights_sum_to_one(self):
        assert sum(w for _, w in ft.FIELD_WEIGHTS) == pytest.approx(1.0)
        assert sum(w for _, w in ft.STATE_WEIGHTS) == pytest.approx(1.0)
        assert sum(w for _, w in ft.FUNDER_WEIGHTS) == pytest.approx(1.0)
