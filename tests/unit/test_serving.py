"""Unit tests of the serving subsystem (repro.serving) and engine epochs."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.er.meta_blocking import MetaBlockingConfig
from repro.parallel import ExecutionConfig, ParallelComparisonExecutor
from repro.serving import (
    CachedResult,
    CoalesceTimeout,
    EngineService,
    LatencyRecorder,
    OverloadError,
    RequestTimeout,
    ResultCache,
    ServiceMetrics,
    SingleFlight,
    make_server,
    result_key,
)
from repro.storage.table import Table


# -- engine epochs ----------------------------------------------------------
class TestEngineEpochs:
    @pytest.fixture
    def engine(self):
        table, _ = generate_people(60, seed=11, name="PPL")
        engine = QueryEREngine(sample_stats=False, execution=ExecutionConfig.serial())
        engine.register(table)
        return engine

    def test_register_opens_epoch(self, engine):
        assert engine.epoch_of("PPL") == 1
        assert engine.epoch_of("ppl") == 1  # case-insensitive
        assert engine.epoch_of("unknown") == 0

    def test_insert_advances_epoch(self, engine):
        before = engine.epoch_of("PPL")
        engine.insert("PPL", [(9001, "Ann", "Li", "1", "x", "y", "2000", "nsw",
                               "1990-01-01", 34, "1", "a@b.c", "Acme")])
        assert engine.epoch_of("PPL") == before + 1

    def test_empty_append_does_not_advance(self, engine):
        before = engine.epoch_of("PPL")
        engine.note_appended("PPL", 0)
        assert engine.epoch_of("PPL") == before

    def test_replace_registration_advances_epoch(self, engine):
        table, _ = generate_people(30, seed=12, name="PPL")
        engine.register(table, replace=True)
        assert engine.epoch_of("PPL") == 2

    def test_table_epochs_is_a_snapshot(self, engine):
        snapshot = engine.table_epochs()
        engine.insert("PPL", [(9002, "Bo", "Xu", "2", "x", "y", "2000", "vic",
                               "1991-01-01", 33, "2", "b@c.d", "Acme")])
        assert snapshot == {"ppl": 1}
        assert engine.table_epochs() == {"ppl": 2}


class TestExecutorEpochSource:
    """The candidate-plan cache consumes the engine's epoch counter."""

    def _engine(self):
        table, _ = generate_people(60, seed=13, name="P")
        engine = QueryEREngine(
            sample_stats=False,
            meta_blocking=MetaBlockingConfig.none(),
            use_link_index=False,
            execution=ExecutionConfig(
                workers=2, backend="thread",
                min_parallel_pairs=0, min_parallel_comparisons=0,
            ),
        )
        engine.register(table)
        return engine

    def test_executor_reads_engine_epoch(self):
        engine = self._engine()
        executor = engine.parallel_executor
        assert executor.epoch_of("P") == engine.epoch_of("P") == 1

    def test_plan_cache_invalidated_by_insert(self):
        engine = self._engine()
        executor = engine.parallel_executor
        frontier = {1, 2, 3}
        executor.store_candidates("P", frontier, "fp", [(1, 2)])
        assert executor.cached_candidates("P", frontier, "fp") == [(1, 2)]
        engine.insert("P", [(9001, "Ann", "Li", "1", "x", "y", "2000", "nsw",
                             "1990-01-01", 34, "1", "a@b.c", "Acme")])
        assert executor.cached_candidates("P", frontier, "fp") is None

    def test_plan_cache_invalidated_by_replace_registration(self):
        engine = self._engine()
        executor = engine.parallel_executor
        frontier = {1, 2}
        executor.store_candidates("P", frontier, "fp", [(1, 2)])
        table, _ = generate_people(30, seed=14, name="P")
        engine.register(table, replace=True)
        assert executor.cached_candidates("P", frontier, "fp") is None

    def test_standalone_executor_keeps_fallback_counter(self):
        executor = ParallelComparisonExecutor(
            ExecutionConfig(workers=2, backend="thread")
        )
        executor.store_candidates("T", {1}, "fp", [])
        assert executor.cached_candidates("T", {1}, "fp") == []
        executor.invalidate_table("T")
        assert executor.cached_candidates("T", {1}, "fp") is None

    def test_engine_backed_invalidate_table_is_noop(self):
        engine = self._engine()
        executor = engine.parallel_executor
        executor.store_candidates("P", {1}, "fp", [])
        executor.invalidate_table("P")  # engine epochs are authoritative
        assert executor.cached_candidates("P", {1}, "fp") == []


# -- metrics ----------------------------------------------------------------
class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):
            recorder.record(ms / 1000.0)
        assert recorder.percentile(50) == pytest.approx(0.050)
        assert recorder.percentile(99) == pytest.approx(0.099)

    def test_window_slides(self):
        recorder = LatencyRecorder(capacity=4)
        for value in (1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0):
            recorder.record(value)
        assert recorder.percentile(50) == 5.0

    def test_empty_snapshot(self):
        assert LatencyRecorder().snapshot() == {"count": 0}


class TestServiceMetrics:
    def test_counters_and_stages(self):
        metrics = ServiceMetrics()
        metrics.increment("queries_total")
        metrics.increment("queries_total", 2)
        metrics.observe_stages(0.5, {"block-join": 0.2})
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["queries_total"] == 3
        assert snapshot["latency"]["total"]["count"] == 1
        assert snapshot["latency"]["block-join"]["p50_ms"] == pytest.approx(200.0)


# -- result cache -----------------------------------------------------------
def _entry(epochs):
    return CachedResult(columns=("a",), rows=((1,),), comparisons=0, epochs=epochs)


class TestResultCache:
    def test_epoch_in_key_separates_snapshots(self):
        cache = ResultCache(8)
        cache.put(result_key("q", "aes", {"t": 1}), _entry({"t": 1}))
        assert cache.get(result_key("q", "aes", {"t": 1})) is not None
        assert cache.get(result_key("q", "aes", {"t": 2})) is None
        assert cache.get(result_key("q", "nes", {"t": 1})) is None

    def test_lru_eviction(self):
        cache = ResultCache(2)
        for i in range(3):
            cache.put(("q%d" % i, "aes", frozenset()), _entry({}))
        assert cache.get(("q0", "aes", frozenset())) is None
        assert cache.get(("q2", "aes", frozenset())) is not None
        assert cache.stats["evictions"] == 1

    def test_evict_stale_drops_old_epochs_only(self):
        cache = ResultCache(8)
        cache.put(result_key("q1", "aes", {"t": 1}), _entry({"t": 1}))
        cache.put(result_key("q2", "aes", {"t": 2, "u": 1}), _entry({"t": 2, "u": 1}))
        dropped = cache.evict_stale({"t": 2, "u": 1})
        assert dropped == 1
        assert len(cache) == 1
        assert cache.stats["invalidations"] == 1
        assert cache.get(result_key("q2", "aes", {"t": 2, "u": 1})) is not None

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        cache.put(("q", "aes", frozenset()), _entry({}))
        assert cache.get(("q", "aes", frozenset())) is None


# -- single flight ----------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_calls_share_one_execution(self):
        flights = SingleFlight()
        executions = []
        gate = threading.Event()

        def slow():
            executions.append(1)
            gate.wait(5)
            return "answer"

        outcomes = []

        def call():
            outcomes.append(flights.run("k", slow, timeout=10))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        gate.set()
        for thread in threads:
            thread.join()
        assert len(executions) == 1
        assert {value for value, _ in outcomes} == {"answer"}
        assert sorted(coalesced for _, coalesced in outcomes) == [False, True, True, True]
        assert flights.stats["coalesced"] == 3

    def test_sequential_calls_both_execute(self):
        flights = SingleFlight()
        assert flights.run("k", lambda: 1) == (1, False)
        assert flights.run("k", lambda: 2) == (2, False)

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        gate = threading.Event()
        outcomes = []

        def boom():
            gate.wait(5)
            raise RuntimeError("leader failed")

        def call():
            try:
                flights.run("k", boom, timeout=10)
            except RuntimeError as error:
                outcomes.append(str(error))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        gate.set()
        for thread in threads:
            thread.join()
        assert outcomes == ["leader failed"] * 3

    def test_follower_timeout(self):
        flights = SingleFlight()
        release = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            release.wait(5)
            return "late"

        leader = threading.Thread(target=lambda: flights.run("k", slow))
        leader.start()
        started.wait(5)
        with pytest.raises(CoalesceTimeout):
            flights.run("k", slow, timeout=0.05)
        release.set()
        leader.join()
        assert flights.stats["timeouts"] == 1


# -- the service over HTTP --------------------------------------------------
@pytest.fixture(scope="module")
def served():
    table, _ = generate_people(150, seed=21, name="PPL")
    engine = QueryEREngine(sample_stats=False, execution=ExecutionConfig.serial())
    engine.register(table)
    service = EngineService(engine, max_inflight=8, cache_size=64)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.url, service, engine
    server.shutdown()
    server.server_close()


def _post(url, path, body, timeout=60):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(url, path, timeout=10):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.load(response)


SQL = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state = 'nsw'"


class TestHTTPService:
    def test_query_roundtrip_matches_library_mode(self, served):
        url, _, engine = served
        payload = _post(url, "/query", {"sql": SQL})
        expected = engine.execute(SQL)
        assert payload["columns"] == list(expected.columns)
        assert sorted(map(tuple, payload["rows"]), key=repr) == sorted(
            (tuple(map(_jsonify, row)) for row in expected.rows), key=repr
        )
        assert payload["epochs"] == engine.table_epochs()

    def test_normalized_spellings_share_a_cache_entry(self, served):
        url, service, _ = served
        first = _post(url, "/query", {"sql": SQL})
        variant = _post(
            url, "/query", {"sql": "select  dedup ID, given_name,surname from ppl where state='nsw'"}
        )
        assert variant["cache"] == "hit"
        assert variant["rows"] == first["rows"]

    def test_insert_bumps_epoch_and_invalidates(self, served):
        url, service, engine = served
        before = _post(url, "/query", {"sql": SQL})
        outcome = _post(
            url,
            "/insert",
            {"table": "PPL", "rows": [[77001, "Zed", "Zanner", "9", "High St",
                                       "Newtown", "2042", "nsw", "1980-02-03",
                                       44, "555", "z@z.org", "Acme"]]},
        )
        assert outcome["inserted"] == 1
        assert outcome["epochs"]["ppl"] == before["epochs"]["ppl"] + 1
        after = _post(url, "/query", {"sql": SQL})
        assert after["cache"] == "miss"  # stale entry unreachable + evicted
        assert after["epochs"]["ppl"] == outcome["epochs"]["ppl"]

    def test_insert_sql_routes_to_write_path(self, served):
        url, _, engine = served
        epoch = engine.epoch_of("PPL")
        payload = _post(
            url,
            "/query",
            {"sql": "INSERT INTO PPL (id, given_name, surname, state) "
                    "VALUES (77002, 'Amy', 'Stone', 'vic')"},
        )
        assert payload["cache"] == "write"
        assert payload["epochs"]["ppl"] == epoch + 1

    def test_healthz_and_metrics(self, served):
        url, _, engine = served
        _post(url, "/query", {"sql": SQL})  # at least one query on the books
        health = _get(url, "/healthz")
        assert health["status"] == "ok"
        assert health["epochs"] == engine.table_epochs()
        metrics = _get(url, "/metrics")
        assert metrics["counters"]["queries_total"] >= 1
        assert metrics["cache"]["size"] >= 1
        assert "total" in metrics["latency"]

    def test_bad_sql_is_400(self, served):
        url, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, "/query", {"sql": "SELEC nonsense"})
        assert excinfo.value.code == 400

    def test_missing_body_is_400(self, served):
        url, _, _ = served
        request = urllib.request.Request(url + "/query", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, served):
        url, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/nope")
        assert excinfo.value.code == 404


def _jsonify(value):
    """What a JSON round trip does to a result value."""
    return json.loads(json.dumps(value, default=str))


class TestAdmissionAndTimeouts:
    def _service(self, **kwargs):
        table, _ = generate_people(60, seed=31, name="PPL")
        engine = QueryEREngine(sample_stats=False, execution=ExecutionConfig.serial())
        engine.register(table)
        return EngineService(engine, **kwargs)

    def test_overload_refused_with_retry_after(self):
        service = self._service(max_inflight=1)
        with service._admission:
            service._inflight = 1
        try:
            with pytest.raises(OverloadError) as excinfo:
                service.query("SELECT COUNT(*) AS n FROM PPL")
            assert excinfo.value.retry_after > 0
            assert service.metrics.counter("rejected_overload") == 1
        finally:
            with service._admission:
                service._inflight = 0

    def test_overload_maps_to_http_503(self):
        service = self._service(max_inflight=1)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with service._admission:
                service._inflight = 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server.url, "/query", {"sql": "SELECT COUNT(*) AS n FROM PPL"})
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
        finally:
            with service._admission:
                service._inflight = 0
            server.shutdown()
            server.server_close()

    def test_gate_timeout_raises_request_timeout(self):
        service = self._service()
        acquired = service._gate.acquire()
        assert acquired
        try:
            with pytest.raises(RequestTimeout):
                service.query("SELECT COUNT(*) AS n FROM PPL", timeout=0.05)
        finally:
            service._gate.release()

    def test_cache_hits_bypass_admission(self):
        service = self._service(max_inflight=1)
        sql = "SELECT COUNT(*) AS n FROM PPL"
        service.query(sql)  # populate
        with service._admission:
            service._inflight = 1  # saturated
        try:
            served = service.query(sql)
            assert served.cache == "hit"
        finally:
            with service._admission:
                service._inflight = 0


class TestPlanCacheInMetrics:
    """Satellite: the engine plan cache surfaces in /metrics, and
    EXPLAIN never shares a result-cache entry with its query."""

    def test_metrics_snapshot_includes_plan_cache(self, served):
        url, service, _ = served
        _post(url, "/query", {"sql": SQL})
        _post(url, "/query", {"sql": SQL})  # result-cache hit; plan reused
        metrics = _get(url, "/metrics")
        assert "plan_cache" in metrics
        for key in ("size", "hits", "misses", "evictions", "invalidations"):
            assert key in metrics["plan_cache"], key

    def test_plan_cache_counts_hits_across_requests(self, served):
        url, service, engine = served
        probe = SQL + " LIMIT 7"  # unique spelling: bypass the result cache
        _post(url, "/query", {"sql": probe})
        before = engine.plan_cache.snapshot()["hits"]
        service.cache.clear()  # force re-execution, not a cached answer
        _post(url, "/query", {"sql": probe})
        assert engine.plan_cache.snapshot()["hits"] > before

    def test_explain_and_query_use_distinct_cache_entries(self, served):
        url, service, _ = served
        plain = _post(url, "/query", {"sql": SQL})
        explained = _post(url, "/query", {"sql": "EXPLAIN " + SQL})
        assert explained["columns"] == ["plan"]
        assert explained["rows"] != plain["rows"]
        # A repeat EXPLAIN hits its own entry, not the query's.
        again = _post(url, "/query", {"sql": "explain " + SQL})
        assert again["cache"] == "hit"
        assert again["rows"] == explained["rows"]
