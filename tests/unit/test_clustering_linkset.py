"""Unit tests for union-find, connected components and linksets."""

from repro.er.clustering import UnionFind, connected_components
from repro.er.linkset import LinkSet, canonical_pair


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_find_auto_registers(self):
        uf = UnionFind()
        assert uf.find("new") == "new"

    def test_groups_include_singletons(self):
        uf = UnionFind(["x"])
        uf.union("a", "b")
        groups = uf.groups()
        assert {"x"} in groups and {"a", "b"} in groups

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert len(uf.groups()) == 1

    def test_len_counts_elements(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3


class TestConnectedComponents:
    def test_basic(self):
        comps = connected_components([("a", "b"), ("c", "d"), ("b", "c")])
        assert comps == [{"a", "b", "c", "d"}]

    def test_isolated_nodes(self):
        comps = connected_components([("a", "b")], nodes=["z"])
        assert {"z"} in comps


class TestCanonicalPair:
    def test_order_insensitive(self):
        assert canonical_pair("b", "a") == canonical_pair("a", "b")


class TestLinkSet:
    def test_add_and_contains(self):
        ls = LinkSet()
        assert ls.add("a", "b")
        assert ("b", "a") in ls

    def test_self_link_rejected(self):
        ls = LinkSet()
        assert not ls.add("a", "a")
        assert len(ls) == 0

    def test_duplicate_add_returns_false(self):
        ls = LinkSet([("a", "b")])
        assert not ls.add("b", "a")

    def test_duplicates_of(self):
        ls = LinkSet([("a", "b"), ("a", "c")])
        assert ls.duplicates_of("a") == {"b", "c"}
        assert ls.duplicates_of("zz") == set()

    def test_cluster_of_is_transitive(self):
        ls = LinkSet([("a", "b"), ("b", "c")])
        assert ls.cluster_of("a") == {"a", "b", "c"}

    def test_cluster_of_unknown_is_singleton(self):
        assert LinkSet().cluster_of("q") == {"q"}

    def test_clusters(self):
        ls = LinkSet([("a", "b"), ("x", "y"), ("y", "z")])
        clusters = ls.clusters()
        assert {"a", "b"} in clusters and {"x", "y", "z"} in clusters

    def test_update_merges(self):
        ls = LinkSet([("a", "b")])
        ls.update(LinkSet([("c", "d")]))
        assert len(ls) == 2

    def test_equality(self):
        assert LinkSet([("a", "b")]) == LinkSet([("b", "a")])

    def test_copy_is_independent(self):
        ls = LinkSet([("a", "b")])
        clone = ls.copy()
        clone.add("x", "y")
        assert len(ls) == 1

    def test_entities(self):
        assert LinkSet([("a", "b")]).entities() == {"a", "b"}
