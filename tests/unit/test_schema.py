"""Unit tests for repro.storage.schema."""

import pytest

from repro.storage.schema import Column, ColumnType, Schema, SchemaError


class TestColumnType:
    def test_string_coercion(self):
        assert ColumnType.STRING.coerce(42) == "42"

    def test_integer_coercion(self):
        assert ColumnType.INTEGER.coerce("17") == 17

    def test_float_coercion(self):
        assert ColumnType.FLOAT.coerce("2.5") == 2.5

    def test_boolean_coercion_from_strings(self):
        assert ColumnType.BOOLEAN.coerce("yes") is True
        assert ColumnType.BOOLEAN.coerce("no") is False

    def test_none_maps_to_none(self):
        for ctype in ColumnType:
            assert ctype.coerce(None) is None

    def test_empty_string_maps_to_none(self):
        assert ColumnType.INTEGER.coerce("") is None


class TestSchema:
    def test_of_builds_string_columns(self):
        schema = Schema.of("id", "title")
        assert schema.names == ["id", "title"]
        assert all(c.type is ColumnType.STRING for c in schema)

    def test_id_column_defaults_to_first(self):
        assert Schema.of("id", "x").id_column == "id"

    def test_explicit_id_column(self):
        schema = Schema.of("a", "key", id_column="key")
        assert schema.id_column == "key"
        assert schema.id_position == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "A")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_id_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "b", id_column="c")

    def test_position_is_case_insensitive(self):
        schema = Schema.of("Id", "Title")
        assert schema.position("title") == 1
        assert schema.position("TITLE") == 1

    def test_position_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").position("zz")

    def test_contains(self):
        schema = Schema.of("a", "b")
        assert "B" in schema
        assert "c" not in schema

    def test_coerce_row_length_mismatch(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "b").coerce_row(["only-one"])

    def test_coerce_row_applies_types(self):
        schema = Schema([Column("id", ColumnType.INTEGER), Column("name")])
        assert schema.coerce_row(["3", "x"]) == (3, "x")

    def test_non_id_names(self):
        assert Schema.of("id", "a", "b").non_id_names() == ["a", "b"]

    def test_empty_column_name_rejected(self):
        with pytest.raises(ValueError):
            Column("")
