"""Unit tests for the Comparison-Execution fast path.

Covers the shared ER utilities (LRU cache, canonical ordering), token
interning, profile signatures, the similarity bounds and the matcher's
short-circuit cascade.
"""

import pytest

from repro.core.indices import TableIndex
from repro.er.matching import ProfileMatcher, build_signature
from repro.er.similarity import (
    jaccard,
    jaccard_sorted_ids,
    jaro,
    jaro_fast,
    jaro_winkler,
    jaro_winkler_bound,
    jaro_winkler_char_bound,
)
from repro.er.tokenizer import TokenVocabulary
from repro.er.util import LRUCache, ordered_pair, safe_sorted
from repro.storage.schema import Schema
from repro.storage.table import Table


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache["b"] = 2
        assert cache.get("a") == 1
        assert cache.get("b") == 2
        assert cache.get("missing", "fallback") == "fallback"

    def test_capacity_is_enforced(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i)
        assert len(cache) == 3

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a → b is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_overwrite_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestSharedHelpers:
    def test_safe_sorted_homogeneous_and_mixed(self):
        assert safe_sorted([3, 1, 2]) == [1, 2, 3]
        assert safe_sorted(["b", 1]) == sorted(["b", 1], key=repr)

    def test_ordered_pair(self):
        assert ordered_pair(2, 1) == (1, 2)
        assert ordered_pair("a", "b") == ("a", "b")


class TestTokenVocabulary:
    def test_intern_is_idempotent(self):
        vocabulary = TokenVocabulary()
        first = vocabulary.intern("alpha")
        assert vocabulary.intern("alpha") == first
        assert len(vocabulary) == 1

    def test_roundtrip(self):
        vocabulary = TokenVocabulary()
        token_id = vocabulary.intern("beta")
        assert vocabulary.token_of(token_id) == "beta"
        assert vocabulary.id_of("beta") == token_id
        assert "beta" in vocabulary

    def test_intern_all_sorted_and_deduplicated(self):
        vocabulary = TokenVocabulary()
        ids = vocabulary.intern_all(["b", "a", "b", "c"])
        assert ids == tuple(sorted(ids))
        assert len(ids) == 3


class TestSimilarityBoundsAndFastJaro:
    sample_pairs = [
        ("martha", "marhta"),
        ("dixon", "dicksonx"),
        ("acme corporation", "acme corp"),
        ("", ""),
        ("", "abc"),
        ("abc", "abc"),
        ("completely", "different"),
        ("a" * 60 + "xyz", "a" * 60 + "zyx"),
    ]

    def test_jaccard_sorted_ids_matches_set_jaccard(self):
        cases = [([], []), ([1, 2, 3], []), ([1, 2], [2, 3]), ([5], [5]), ([1, 4, 9], [2, 4, 8, 9])]
        for a, b in cases:
            assert jaccard_sorted_ids(a, b) == jaccard(a, b)

    def test_length_bound_dominates_jaro_winkler(self):
        for a, b in self.sample_pairs:
            assert jaro_winkler(a, b) <= jaro_winkler_bound(a, b) + 1e-9

    def test_char_bound_dominates_jaro_winkler(self):
        from collections import Counter

        for a, b in self.sample_pairs:
            bound = jaro_winkler_char_bound(a, b, Counter(a), Counter(b))
            assert jaro_winkler(a, b) <= bound + 1e-9

    def test_char_bound_zero_when_no_common_characters(self):
        from collections import Counter

        assert jaro_winkler_char_bound("abc", "xyz", Counter("abc"), Counter("xyz")) == 0.0

    def test_jaro_fast_bit_identical(self):
        for a, b in self.sample_pairs:
            assert jaro_fast(a, b) == jaro(a, b)


def people_table():
    return Table(
        "P",
        Schema.of("id", "name", "city"),
        [
            ("p1", "john smith", "melbourne"),
            ("p2", "jon smith", "melbourne"),
            ("p3", "alice jones", None),
            ("p4", None, None),
        ],
    )


class TestProfileSignatures:
    def test_signature_tokens_match_matcher_tokens(self):
        vocabulary = TokenVocabulary()
        attributes = {"name": "john smith", "city": "melbourne"}
        signature = build_signature("e1", attributes, vocabulary)
        tokens = {vocabulary.token_of(token_id) for token_id in signature.token_ids}
        assert tokens == {"john", "smith", "melbourne"}

    def test_signature_respects_exclude_and_nulls(self):
        vocabulary = TokenVocabulary()
        attributes = {"name": "john", "secret": "classified", "empty": None}
        signature = build_signature(
            "e1", attributes, vocabulary, exclude=frozenset({"secret"})
        )
        assert set(signature.norms) == {"name"}
        assert {vocabulary.token_of(t) for t in signature.token_ids} == {"john"}

    def test_table_index_builds_signatures_lazily(self):
        index = TableIndex(people_table())
        assert index.signature_count == 0
        signature = index.signature_of("p1")
        assert index.signature_count == 1
        assert index.signature_of("p1") is signature  # memoized

    def test_add_records_prebuilds_signatures_and_interns(self):
        index = TableIndex(people_table())
        index.signature_of("p1")
        vocabulary_before = len(index.vocabulary)
        index.table.append_rows([("p5", "zanzibar quux", "hobart")])
        index.add_records(["p5"])
        assert index.signature_count == 2  # id 1 (lazy) + id 5 (eager)
        assert len(index.vocabulary) > vocabulary_before


class TestMatchSignatureCascade:
    def decisions(self, matcher, index, ids):
        out = []
        for a in ids:
            for b in ids:
                if a < b:
                    out.append(
                        matcher.match_signatures(index.signature_of(a), index.signature_of(b))
                    )
        return out

    def test_cascade_decisions_equal_slow_path(self):
        table = people_table()
        index = TableIndex(table)
        fast = ProfileMatcher(exclude=("id",))
        slow = ProfileMatcher(exclude=("id",), fast_path=False)
        ids = ["p1", "p2", "p3", "p4"]
        fast_decisions = self.decisions(fast, index, ids)
        slow_decisions = [
            slow.matches(index.entities.attributes(a), index.entities.attributes(b))
            for a in ids
            for b in ids
            if a < b
        ]
        assert fast_decisions == slow_decisions
        assert fast.cascade_stats["pairs"] == len(fast_decisions)

    def test_incompatible_exclude_falls_back(self):
        index = TableIndex(people_table())
        matcher = ProfileMatcher(exclude=("id", "city"))
        matcher.match_signatures(index.signature_of("p1"), index.signature_of("p2"))
        assert matcher.cascade_stats["incompatible"] == 1
        assert matcher.cascade_stats["pairs"] == 0

    def test_custom_similarity_disables_cascade(self):
        index = TableIndex(people_table())
        matcher = ProfileMatcher(similarity=lambda a, b: 1.0, exclude=("id",))
        assert not matcher.fast_path
        # "p1"/"p3" share a comparable attribute, which the constant-1
        # custom similarity scores as a certain match via the slow path.
        assert matcher.match_signatures(index.signature_of("p1"), index.signature_of("p3")) is True
        assert matcher.cascade_stats["incompatible"] == 1

    def test_caches_stay_bounded(self):
        matcher = ProfileMatcher(exclude=("id",), cache_capacity=8)
        for i in range(100):
            left = {"name": f"value number {i}", "city": f"city {i}"}
            right = {"name": f"value number {i + 1}", "city": f"city {i + 1}"}
            matcher.matches(left, right)
        assert len(matcher._token_cache) <= 8
        assert len(matcher._pair_cache) <= 8

    def test_clear_cache_and_stats(self):
        index = TableIndex(people_table())
        matcher = ProfileMatcher(exclude=("id",))
        matcher.match_signatures(index.signature_of("p1"), index.signature_of("p2"))
        matcher.clear_cache()
        assert len(matcher._pair_cache) == 0
        matcher.reset_cascade_stats()
        assert all(count == 0 for count in matcher.cascade_stats.values())
