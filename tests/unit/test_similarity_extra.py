"""Unit tests for the additional similarity functions."""

import pytest

from repro.er.similarity import dice, jaro_winkler, monge_elkan, overlap_coefficient


class TestDice:
    def test_identical(self):
        assert dice({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert dice({1}, {2}) == 0.0

    def test_partial(self):
        assert dice({1, 2, 3}, {2, 3, 4}) == pytest.approx(4 / 6)

    def test_both_empty(self):
        assert dice([], []) == 1.0

    def test_dominates_jaccard(self):
        from repro.er.similarity import jaccard

        a, b = {1, 2, 3}, {3, 4}
        assert dice(a, b) >= jaccard(a, b)


class TestOverlapCoefficient:
    def test_subset_scores_one(self):
        assert overlap_coefficient({"extending", "database"},
                                   {"international", "extending", "database", "technology"}) == 1.0

    def test_disjoint(self):
        assert overlap_coefficient({"a"}, {"b"}) == 0.0

    def test_one_empty(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_both_empty(self):
        assert overlap_coefficient([], []) == 1.0


class TestMongeElkan:
    def test_identical_strings(self):
        assert monge_elkan("john smith", "john smith") == 1.0

    def test_token_reorder_tolerant(self):
        assert monge_elkan("smith john", "john smith") == 1.0

    def test_abbreviated_tokens_score_high(self):
        score = monge_elkan("j. smith", "john smith")
        assert score > 0.7

    def test_empty_cases(self):
        assert monge_elkan("", "") == 1.0
        assert monge_elkan("", "x") == 0.0
        assert monge_elkan("x", "") == 0.0

    def test_custom_inner_similarity(self):
        exact = lambda a, b: 1.0 if a == b else 0.0
        assert monge_elkan("aa bb", "aa cc", inner=exact) == 0.5

    def test_bounded(self):
        assert 0.0 <= monge_elkan("foo bar", "baz qux") <= 1.0

    def test_default_inner_is_jaro_winkler(self):
        assert monge_elkan("dwayne", "duane") == pytest.approx(jaro_winkler("dwayne", "duane"))


class TestRobustness:
    """Failure-injection: pathological values through the full matcher."""

    def test_unicode_values(self):
        from repro.er.matching import ProfileMatcher

        m = ProfileMatcher()
        a = {"name": "Γιώργος Αλεξίου", "city": "Αθήνα"}
        assert m.profile_similarity(a, dict(a)) == 1.0

    def test_very_long_values(self):
        from repro.er.matching import ProfileMatcher

        m = ProfileMatcher()
        long_value = "token " * 500
        sim = m.profile_similarity({"x": long_value}, {"x": long_value})
        assert sim == 1.0

    def test_empty_string_values(self):
        from repro.er.matching import ProfileMatcher

        m = ProfileMatcher()
        assert 0.0 <= m.profile_similarity({"x": ""}, {"x": ""}) <= 1.0

    def test_numeric_values_compare_as_strings(self):
        from repro.er.matching import ProfileMatcher

        m = ProfileMatcher()
        assert m.profile_similarity({"x": 1234}, {"x": 1234}) == 1.0
