"""Unit tests for the cost-based query optimizer (repro.optimizer)."""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import DedupQueryPlanner, ExecutionMode, JoinStep
from repro.datagen import generate_organizations, generate_people, generate_projects
from repro.er.meta_blocking import MetaBlockingConfig
from repro.optimizer import (
    CostModel,
    PlanCache,
    dedup_placements,
    enumerate_dedup_orders,
    enumerate_relational_orders,
    expand_stars,
    identity_safe,
    join_edges,
    plan_key,
)
from repro.sql.parser import parse
from repro.storage.schema import Schema
from repro.storage.table import Table


def _three_table_engine(**overrides):
    orgs, _ = generate_organizations(60, seed=51)
    names = [row["name"] for row in orgs]
    people, _ = generate_people(120, organisations=names[:30], seed=52)
    projects, _ = generate_projects(80, organisations=names, seed=53)
    defaults = dict(meta_blocking=MetaBlockingConfig.none(), execution=1)
    defaults.update(overrides)
    engine = QueryEREngine(**defaults)
    for table in (people, orgs, projects):
        engine.register(table)
    return engine


@pytest.fixture(scope="module")
def mb_none_engine():
    return _three_table_engine()


THREE_WAY = (
    "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
    "FROM PPL "
    "JOIN OAO ON PPL.organisation = OAO.name "
    "JOIN OAP ON OAP.organisation = OAO.name "
    "WHERE OAP.programme = 'fp7'"
)
TWO_WAY = (
    "SELECT DEDUP PPL.surname, OAO.name "
    "FROM PPL JOIN OAO ON PPL.organisation = OAO.name "
    "WHERE PPL.state = 'nsw'"
)


# -- identity gate -----------------------------------------------------------


class TestIdentityGate:
    def test_only_all_stages_off_is_safe(self):
        assert identity_safe(MetaBlockingConfig.none())
        assert not identity_safe(MetaBlockingConfig.all())
        assert not identity_safe(MetaBlockingConfig.bp_bf())
        assert not identity_safe(MetaBlockingConfig(purging=False, filtering=False))

    def test_default_mb_engine_falls_back_with_reason(self):
        engine = _three_table_engine(meta_blocking=MetaBlockingConfig.all())
        text = engine.explain(THREE_WAY)
        assert text.startswith("-- plan: heuristic")
        assert "meta-blocking enabled" in text

    def test_non_aes_modes_are_never_rewritten(self, mb_none_engine):
        for mode in (ExecutionMode.NES, ExecutionMode.BATCH):
            text = mb_none_engine.explain(THREE_WAY, mode)
            assert text.startswith("-- plan: heuristic"), mode


# -- plan cache --------------------------------------------------------------


class TestPlanCache:
    def test_key_separates_sql_mode_epochs_version(self):
        base = plan_key("select 1", "aes", {"t": 1}, 0)
        assert plan_key("select 1", "aes", {"t": 1}, 0) == base
        assert plan_key("select 2", "aes", {"t": 1}, 0) != base
        assert plan_key("select 1", "nes", {"t": 1}, 0) != base
        assert plan_key("select 1", "aes", {"t": 2}, 0) != base
        assert plan_key("select 1", "aes", {"t": 1}, 1) != base

    def test_lru_eviction_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b (least recent)
        assert cache.get("b") is None
        assert cache.get("c") == 3
        snapshot = cache.snapshot()
        assert snapshot["evictions"] == 1
        assert snapshot["hits"] == 2
        assert snapshot["misses"] == 1

    def test_invalidate_counts_dropped_entries(self):
        cache = PlanCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.snapshot()["invalidations"] == 2

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_repeated_query_hits_engine_cache(self, mb_none_engine):
        engine = mb_none_engine
        before = engine.plan_cache.snapshot()["hits"]
        engine.execute(TWO_WAY)
        engine.execute(TWO_WAY)
        assert engine.plan_cache.snapshot()["hits"] > before

    def test_insert_invalidates_plans_and_bumps_version(self):
        engine = _three_table_engine()
        engine.execute(TWO_WAY)
        assert len(engine.plan_cache) > 0
        version = engine.statistics_version()
        engine.execute(
            "INSERT INTO OAO (id, name) VALUES (90001, 'fresh org ltd')"
        )
        assert len(engine.plan_cache) == 0
        assert engine.statistics_version() > version

    def test_register_bumps_statistics_version(self):
        engine = QueryEREngine(sample_stats=False)
        version = engine.statistics_version()
        engine.register(Table("T", Schema.of("id", "x"), [("t1", "a")]))
        assert engine.statistics_version() > version

    def test_disabled_optimizer_skips_the_cache(self):
        engine = _three_table_engine(optimizer=False)
        engine.execute(TWO_WAY)
        engine.execute(TWO_WAY)
        snapshot = engine.plan_cache.snapshot()
        assert snapshot["size"] == 0 and snapshot["hits"] == 0


# -- rewrite rules -----------------------------------------------------------


class TestExpandStars:
    def test_no_star_returns_query_unchanged(self):
        query = parse("SELECT a.x FROM a JOIN b ON a.x = b.y")
        assert expand_stars(query, lambda name: ["x"]) is query

    def test_star_expands_in_from_order(self):
        query = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        columns = {"a": ["x", "z"], "b": ["y"]}
        expanded = expand_stars(query, lambda name: columns[name])
        names = [(item.expr.qualifier, item.expr.name) for item in expanded.items]
        assert names == [("a", "x"), ("a", "z"), ("b", "y")]

    def test_qualified_star_expands_one_binding(self):
        query = parse("SELECT b.*, a.x FROM a JOIN b ON a.x = b.y")
        columns = {"a": ["x"], "b": ["y", "w"]}
        expanded = expand_stars(query, lambda name: columns[name])
        names = [(item.expr.qualifier, item.expr.name) for item in expanded.items]
        assert names == [("b", "y"), ("b", "w"), ("a", "x")]


class TestRelationalOrders:
    CHAIN = "SELECT a.x FROM a JOIN b ON a.x = b.y JOIN c ON c.z = b.y"

    def test_chain_enumerates_multiple_orders(self):
        orders = enumerate_relational_orders(parse(self.CHAIN))
        bindings = {o.bindings for o in orders}
        assert ("a", "b", "c") in bindings  # original survives
        assert len(bindings) > 1
        # a-c is not an edge: any order must put b before the second leaf.
        assert ("a", "c", "b") not in bindings

    def test_outer_join_is_not_reorderable(self):
        query = parse("SELECT a.x FROM a LEFT JOIN b ON a.x = b.y")
        assert join_edges(query) is None
        assert enumerate_relational_orders(query) == []

    def test_non_equi_join_is_not_reorderable(self):
        assert join_edges(parse("SELECT a.x FROM a JOIN b ON a.x < b.y")) is None

    def test_unqualified_condition_is_not_reorderable(self):
        assert join_edges(parse("SELECT a.x FROM a JOIN b ON x = b.y")) is None

    def test_candidates_preserve_the_join_graph(self):
        for order in enumerate_relational_orders(parse(self.CHAIN)):
            edges = join_edges(order.query)
            assert edges is not None and len(edges) == 2


class TestDedupOrders:
    STEPS = [
        JoinStep("p", "organisation", "o", "name"),
        JoinStep("o", "name", "j", "organisation"),
    ]

    def test_two_step_chain_has_multiple_orders(self):
        orders = enumerate_dedup_orders(self.STEPS)
        signatures = {tuple((s.left_binding, s.right_binding) for s in o) for o in orders}
        assert (("p", "o"), ("o", "j")) in signatures
        assert len(signatures) > 1

    def test_later_steps_keep_bound_side_left(self):
        for order in enumerate_dedup_orders(self.STEPS):
            bound = {order[0].left_binding, order[0].right_binding}
            for step in order[1:]:
                assert step.left_binding in bound
                assert step.right_binding not in bound
                bound.add(step.right_binding)

    def test_placements_are_the_first_joins_endpoints(self):
        assert dedup_placements(self.STEPS) == ("p", "o")

    def test_oversized_order_falls_back_to_original(self):
        steps = [JoinStep(f"t{i}", "x", f"t{i+1}", "x") for i in range(7)]
        assert enumerate_dedup_orders(steps) == [steps]


# -- cost model --------------------------------------------------------------


class TestCostModel:
    def test_binding_estimates_are_memoized_until_invalidate(self, mb_none_engine):
        model = CostModel(mb_none_engine)
        planner = DedupQueryPlanner(mb_none_engine)
        infos, _, _ = planner.analyze(parse(TWO_WAY))
        first = model.binding_estimate(infos[0])
        assert model.binding_estimate(infos[0]) is first
        model.invalidate()
        assert model.binding_estimate(infos[0]) is not first

    def test_filtered_binding_is_more_selective(self, mb_none_engine):
        model = CostModel(mb_none_engine)
        planner = DedupQueryPlanner(mb_none_engine)
        infos, _, _ = planner.analyze(parse(TWO_WAY))
        by_binding = {i.binding.lower(): model.binding_estimate(i) for i in infos}
        assert by_binding["ppl"].selectivity < 1.0  # state filter bound it
        assert by_binding["oao"].qe_rows == by_binding["oao"].table_rows

    def test_dedup_order_cost_prices_every_binding(self, mb_none_engine):
        model = CostModel(mb_none_engine)
        planner = DedupQueryPlanner(mb_none_engine)
        query = parse(THREE_WAY)
        infos, steps, _ = planner.analyze(query)
        cost = model.dedup_order_cost(infos, steps, steps[0].left_binding)
        assert cost.total > 0
        assert set(cost.comparisons) == {i.binding.lower() for i in infos}

    def test_placement_changes_the_price(self, mb_none_engine):
        model = CostModel(mb_none_engine)
        planner = DedupQueryPlanner(mb_none_engine)
        infos, steps, _ = planner.analyze(parse(TWO_WAY))
        left = model.dedup_order_cost(infos, steps, steps[0].left_binding)
        right = model.dedup_order_cost(infos, steps, steps[0].right_binding)
        assert left.total != right.total

    def test_distinct_values_memoized_and_case_folded(self, mb_none_engine):
        model = CostModel(mb_none_engine)
        count = model.distinct_values("OAO", "name")
        assert count >= 1
        assert model.distinct_values("OAO", "name") == count


# -- EXPLAIN -----------------------------------------------------------------


class TestExplainStatement:
    def test_explain_dedup_returns_plan_rows(self, mb_none_engine):
        result = mb_none_engine.execute("EXPLAIN " + THREE_WAY)
        assert result.columns == ["plan"]
        text = result.plan_description
        assert text.startswith("-- plan:")
        assert "estimated cost" in text
        assert "TableScan" in text and "Deduplicate" in text
        assert "est comparisons=" in text

    def test_explain_analyze_reports_estimated_vs_actual(self, mb_none_engine):
        text = mb_none_engine.execute("EXPLAIN ANALYZE " + TWO_WAY).plan_description
        assert "-- analyze --" in text
        assert "rows: estimated=" in text and "actual=" in text
        assert "comparisons: estimated=" in text
        assert "stage " in text  # per-stage actual timings

    def test_explain_relational_shows_join_order(self, mb_none_engine):
        text = mb_none_engine.execute(
            "EXPLAIN SELECT PPL.surname, OAO.name FROM PPL "
            "JOIN OAO ON PPL.organisation = OAO.name"
        ).plan_description
        assert text.startswith("-- plan:")
        assert "Join" in text and "TableScan" in text

    def test_explain_insert_describes_without_mutating(self, mb_none_engine):
        epoch = mb_none_engine.epoch_of("OAO")
        result = mb_none_engine.execute(
            "EXPLAIN INSERT INTO OAO (id, name) VALUES (91001, 'probe org')"
        )
        assert result.columns == ["plan"]
        assert mb_none_engine.epoch_of("OAO") == epoch  # nothing written

    def test_explain_analyze_insert_is_refused(self, mb_none_engine):
        with pytest.raises(ValueError):
            mb_none_engine.execute(
                "EXPLAIN ANALYZE INSERT INTO OAO (id, name) VALUES (91002, 'x')"
            )

    def test_explain_method_accepts_explain_prefix(self, mb_none_engine):
        assert mb_none_engine.explain("EXPLAIN " + TWO_WAY) == mb_none_engine.explain(
            TWO_WAY
        )


class TestOptimizedPlans:
    BAD_ORDER = (
        "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
        "FROM PPL "
        "JOIN OAO ON PPL.organisation = OAO.name "
        "JOIN OAP ON OAP.organisation = OAO.name "
        "WHERE OAP.programme = 'fp7'"
    )

    def test_bad_order_query_is_optimized_with_both_costs(self, mb_none_engine):
        text = mb_none_engine.explain(self.BAD_ORDER)
        assert text.startswith("-- plan: optimized")
        assert "heuristic cost=" in text

    def test_optimized_plan_matches_heuristic_answer(self):
        baseline = _three_table_engine(optimizer=False)
        optimized = _three_table_engine(optimizer=True)
        expected = baseline.execute(self.BAD_ORDER).sorted_rows()
        assert optimized.execute(self.BAD_ORDER).sorted_rows() == expected

    def test_plan_for_stays_heuristic_first_join_shape(self, mb_none_engine):
        plan = mb_none_engine.plan_for(TWO_WAY, ExecutionMode.AES)
        assert set(plan.estimates) == {"PPL", "OAO"}
        assert plan.clean_first in plan.estimates
