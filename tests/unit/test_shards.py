"""Unit tests of the persistent shard runtime (repro.parallel.shards)."""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.engine import QueryEREngine
from repro.parallel import ExecutionConfig, ShardRuntime, owner_of
from repro.parallel.config import SHARDS_ENV, _cgroup_quota_cores, fork_available
from repro.persist.snapshot import decode_delta_segment, delta_segment_arrays
from repro.resilience import DEGRADATION, FaultPlan, clear_plan, install_plan
from repro.storage.schema import Schema
from repro.storage.table import Table

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork backend unavailable"
)

SQL = "SELECT DEDUP id, title FROM pubs WHERE year >= 1990"


def make_table(n: int = 60, name: str = "pubs") -> Table:
    rows = []
    for i in range(n):
        rows.append((i, f"title about entity {i % 17} record", 1990 + (i % 30), f"venue {i % 5}"))
    for i in range(0, n, 6):
        rows.append((n + i, f"title about entity {i % 17} record", 1990 + (i % 30), f"venue {i % 5}"))
    return Table(name, Schema.of("id", "title", "year", "venue"), rows)


def shard_config(workers: int = 2) -> ExecutionConfig:
    """Thresholds at the floor so tiny tables exercise the shard path."""
    return ExecutionConfig(
        workers=workers,
        backend="process",
        persistent_shards=True,
        min_parallel_pairs=1,
        min_parallel_comparisons=1,
    )


def shard_engine(workers: int = 2, table: Table | None = None) -> QueryEREngine:
    engine = QueryEREngine(execution=shard_config(workers))
    engine.register(table if table is not None else make_table())
    return engine


def serial_engine(table: Table | None = None) -> QueryEREngine:
    engine = QueryEREngine(execution=ExecutionConfig.serial())
    engine.register(table if table is not None else make_table())
    return engine


@pytest.fixture(autouse=True)
def _clean_faults():
    clear_plan()
    yield
    clear_plan()


class TestOwnerOf:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for entity in (0, 1, 41, "P3", "x-9", 10**12, -5):
                owner = owner_of(entity, shards)
                assert 0 <= owner < shards
                assert owner == owner_of(entity, shards)

    def test_int_ids_partition_by_modulo(self):
        assert owner_of(10, 4) == 2
        assert owner_of(11, 4) == 3

    def test_bool_ids_hash_not_modulo(self):
        # bool is an int subclass; routing must not treat True as 1.
        assert owner_of(True, 2) == owner_of(True, 2)

    def test_string_ids_spread(self):
        owners = {owner_of(f"id-{i}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}


class TestDeltaCodec:
    def test_roundtrip_rows_and_keys(self):
        engine = serial_engine()
        table = engine.catalog.get("pubs")
        index = engine.index_of("pubs")
        start = len(table) - 5
        arrays = delta_segment_arrays(index, start, len(table))
        rows, keys = decode_delta_segment(table.schema, arrays)
        assert [tuple(r) for r in rows] == [
            table[i].values for i in range(start, len(table))
        ]
        for offset, row_keys in enumerate(keys):
            entity = table[start + offset].id
            assert set(row_keys) == set(index.itbi.get(entity, ()))

    def test_segment_vocab_is_self_contained(self):
        """Token ids index the delta's own vocab, not the parent's."""
        engine = serial_engine()
        index = engine.index_of("pubs")
        table = engine.catalog.get("pubs")
        arrays = delta_segment_arrays(index, len(table) - 3, len(table))
        n_tokens = len(arrays["vocab.offsets"]) - 1
        assert all(0 <= t < n_tokens for t in arrays["itbi.tokens"])


class TestUsableCores:
    def test_cgroup_quota_caps(self, tmp_path):
        limit = tmp_path / "cpu.max"
        limit.write_text("200000 100000\n")
        assert _cgroup_quota_cores(str(limit)) == 2

    def test_cgroup_max_means_unlimited(self, tmp_path):
        limit = tmp_path / "cpu.max"
        limit.write_text("max 100000\n")
        assert _cgroup_quota_cores(str(limit)) is None

    def test_cgroup_partial_core_rounds_up_to_one(self, tmp_path):
        limit = tmp_path / "cpu.max"
        limit.write_text("50000 100000\n")
        assert _cgroup_quota_cores(str(limit)) == 1

    def test_missing_or_garbage_file_is_ignored(self, tmp_path):
        assert _cgroup_quota_cores(str(tmp_path / "nope")) is None
        bad = tmp_path / "cpu.max"
        bad.write_text("not numbers\n")
        assert _cgroup_quota_cores(str(bad)) is None


class TestResolvedShards:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert not ExecutionConfig(workers=2, backend="process").resolved_shards()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "1")
        config = ExecutionConfig(workers=2, backend="process")
        assert config.resolved_shards() == fork_available()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "1")
        assert not ExecutionConfig(
            workers=2, backend="process", persistent_shards=False
        ).resolved_shards()

    def test_needs_process_backend(self):
        assert not ExecutionConfig(
            workers=2, backend="thread", persistent_shards=True
        ).resolved_shards()

    def test_serial_never_shards(self):
        assert not ExecutionConfig(
            workers=1, persistent_shards=True
        ).resolved_shards()


@needs_fork
class TestShardRuntimeLifecycle:
    def test_spawns_once_and_reuses(self):
        engine = shard_engine()
        try:
            engine.execute(SQL)
            engine.execute(SQL)
            status = engine.parallel_executor.shard_status()
            assert status["spawns"] == status["workers"]
            assert status["alive"] == status["workers"]
            assert status["respawns"] == 0
            pids = [shard["alive"] for shard in status["shards"]]
            assert all(pids)
        finally:
            engine.close()

    def test_close_is_idempotent_and_queries_survive(self):
        engine = shard_engine()
        expected = serial_engine().execute(SQL).rows
        try:
            assert engine.execute(SQL).rows == expected
        finally:
            engine.close()
            engine.close()
        status = engine.parallel_executor.shard_status()
        assert status["alive"] == 0 and not status["started"]
        # Closed runtime routes to the per-query pool path, same answer.
        assert engine.execute(SQL).rows == expected
        engine.close()

    def test_context_manager_closes(self):
        with shard_engine() as engine:
            engine.execute(SQL)
            runtime = engine.parallel_executor.shard_runtime
            assert runtime.status()["alive"] > 0
        assert runtime.status()["alive"] == 0

    def test_register_resets_shards(self):
        engine = shard_engine()
        try:
            engine.execute(SQL)
            assert engine.parallel_executor.shard_status()["started"]
            engine.register(make_table(name="other"))
            assert not engine.parallel_executor.shard_status()["started"]
            # Querying the new table (cold LI, real comparisons) respawns
            # workers from the two-table state.
            assert engine.execute(SQL.replace("pubs", "other")).rows
            assert engine.parallel_executor.shard_status()["started"]
        finally:
            engine.close()

    def test_status_shape(self):
        engine = shard_engine(workers=2)
        try:
            engine.execute(SQL)
            status = engine.parallel_executor.shard_status()
            assert status["workers"] == 2
            assert len(status["shards"]) == 2
            for shard in status["shards"]:
                assert {"id", "alive", "tasks", "deltas", "delta_lag"} <= set(shard)
        finally:
            engine.close()


@needs_fork
class TestDeltaShipping:
    def test_insert_ships_delta_and_stays_identical(self):
        serial = serial_engine()
        engine = shard_engine()
        insert = "INSERT INTO pubs VALUES (900, 'title about entity 3 record', 1993, 'venue 3')"
        try:
            engine.execute(SQL)
            serial.execute(insert)
            engine.execute(insert)
            assert engine.execute(SQL).rows == serial.execute(SQL).rows
            status = engine.parallel_executor.shard_status()
            assert status["deltas_published"] == status["workers"]
            assert all(s["delta_lag"] == 0 for s in status["shards"])
        finally:
            engine.close()

    def test_insert_before_spawn_needs_no_delta(self):
        serial = serial_engine()
        engine = shard_engine()
        insert = "INSERT INTO pubs VALUES (901, 'title about entity 5 record', 1995, 'venue 0')"
        try:
            serial.execute(insert)
            engine.execute(insert)  # shards not spawned yet
            assert engine.execute(SQL).rows == serial.execute(SQL).rows
            assert engine.parallel_executor.shard_status()["deltas_published"] == 0
        finally:
            engine.close()


@needs_fork
class TestShardRecovery:
    def test_task_fault_falls_back_serial_and_matches(self):
        expected = serial_engine().execute(SQL).rows
        install_plan(FaultPlan.parse("shard.task:times=1"))
        engine = shard_engine()
        try:
            assert engine.execute(SQL).rows == expected
            status = engine.parallel_executor.shard_status()
            assert status["serial_fallbacks"] >= 1 or status["task_errors"] >= 1
        finally:
            engine.close()

    def test_spawn_fault_degrades_to_pool(self):
        expected = serial_engine().execute(SQL).rows
        install_plan(FaultPlan.parse("shard.spawn:times=2"))
        before = len(DEGRADATION)
        engine = shard_engine()
        try:
            assert engine.execute(SQL).rows == expected
            events = list(DEGRADATION.events())[before:]
            assert any(e.site == "shard_spawn" for e in events)
        finally:
            engine.close()

    def test_delta_fault_kills_and_respawns_current(self):
        serial = serial_engine()
        insert = "INSERT INTO pubs VALUES (902, 'title about entity 7 record', 1997, 'venue 2')"
        install_plan(FaultPlan.parse("shard.delta:times=1"))
        engine = shard_engine()
        try:
            engine.execute(SQL)
            serial.execute(insert)
            engine.execute(insert)
            status = engine.parallel_executor.shard_status()
            assert status["delta_failures"] == 1
            # The killed shard respawns from current engine state on the
            # next query, so the answer still matches serial bit for bit.
            assert engine.execute(SQL).rows == serial.execute(SQL).rows
            assert engine.parallel_executor.shard_status()["respawns"] >= 1
        finally:
            engine.close()

    def test_dead_worker_process_respawns(self):
        serial = serial_engine()
        engine = shard_engine()
        insert = "INSERT INTO pubs VALUES (903, 'title about entity 9 record', 1999, 'venue 4')"
        try:
            engine.execute(SQL)
            runtime = engine.parallel_executor.shard_runtime
            victim = runtime._shards[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(5.0)
            # The insert invalidates LI clusters, so the next query runs
            # real comparisons; ensure_started respawns the dead shard
            # from current (post-insert) engine state.
            serial.execute(insert)
            engine.execute(insert)
            assert engine.execute(SQL).rows == serial.execute(SQL).rows
            status = runtime.status()
            assert status["respawns"] >= 1
            assert status["alive"] == status["workers"]
        finally:
            engine.close()


@needs_fork
class TestObservability:
    def test_explain_analyze_scheduling_lines(self):
        engine = shard_engine()
        try:
            engine.execute(SQL)
            report = engine.execute("EXPLAIN ANALYZE " + SQL)
            text = "\n".join(str(row[0]) for row in report.rows)
            assert "scheduling: workers=2 backend=process runtime=shards" in text
            assert "scheduling: shards alive=" in text
            assert "scheduling: shard 0:" in text
        finally:
            engine.close()

    def test_metrics_snapshot_has_shard_block(self):
        from repro.serving import EngineService

        engine = shard_engine()
        try:
            service = EngineService(engine, log_stream=None)
            engine.execute(SQL)
            snapshot = service.metrics_snapshot()
            assert "shards" in snapshot
            assert snapshot["shards"]["workers"] == 2
            assert len(snapshot["shards"]["shards"]) == 2
        finally:
            engine.close()

    def test_serial_engine_has_no_shard_block(self):
        from repro.serving import EngineService

        engine = serial_engine()
        service = EngineService(engine, log_stream=None)
        engine.execute(SQL)
        assert "shards" not in service.metrics_snapshot()


class TestRuntimeWithoutEngine:
    def test_unavailable_until_started_source_none(self):
        runtime = ShardRuntime(2, None)
        assert not runtime.ensure_started()
        runtime.close()
