"""Unit tests for Block Purging, Block Filtering and Edge Pruning."""

import pytest

from repro.er.block_filtering import block_filtering, retained_keys
from repro.er.block_purging import block_purging, purge_threshold
from repro.er.blocking import Block, BlockCollection
from repro.er.edge_pruning import (
    BlockingGraph,
    WeightingScheme,
    edge_pruning,
    pairs_to_blocks,
)
from repro.er.meta_blocking import MetaBlockingConfig, apply_meta_blocking


def collection_with_stopword_block():
    """Many small discriminative blocks plus one huge stop-word block."""
    bc = BlockCollection()
    for i in range(20):
        bc.add(f"pair{i}", f"a{i}")
        bc.add(f"pair{i}", f"b{i}")
    for i in range(20):
        bc.add("the", f"a{i}")
        bc.add("the", f"b{i}")
    return bc


class TestBlockPurging:
    def test_purges_the_oversized_block(self):
        bc = collection_with_stopword_block()
        purged = block_purging(bc)
        assert purged.get("the") is None
        assert all(purged.get(f"pair{i}") is not None for i in range(20))

    def test_threshold_on_uniform_collection_keeps_everything(self):
        bc = BlockCollection()
        for i in range(5):
            bc.add(f"k{i}", f"a{i}")
            bc.add(f"k{i}", f"b{i}")
        assert purge_threshold(bc) == 1
        assert len(block_purging(bc)) == 5

    def test_empty_collection(self):
        assert purge_threshold(BlockCollection()) == 0
        assert len(block_purging(BlockCollection())) == 0

    def test_singletons_always_dropped(self):
        bc = BlockCollection()
        bc.add("solo", "a")
        bc.add("pair", "a")
        bc.add("pair", "b")
        purged = block_purging(bc)
        assert purged.get("solo") is None

    def test_never_increases_comparisons(self):
        bc = collection_with_stopword_block()
        assert block_purging(bc).cardinality <= bc.cardinality


class TestBlockFiltering:
    def test_keeps_smallest_blocks_per_entity(self):
        bc = BlockCollection()
        for e in ("a", "b", "c", "d"):
            bc.add("big", e)
        bc.add("small", "a")
        bc.add("small", "b")
        kept = retained_keys(bc, ratio=0.5)
        assert kept["a"] == ["small"]

    def test_ratio_one_keeps_everything(self):
        bc = BlockCollection()
        bc.add("x", "a")
        bc.add("x", "b")
        bc.add("y", "a")
        bc.add("y", "b")
        assert block_filtering(bc, ratio=1.0).cardinality == bc.cardinality

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            block_filtering(BlockCollection(), ratio=0.0)

    def test_never_increases_comparisons(self):
        bc = collection_with_stopword_block()
        assert block_filtering(bc).cardinality <= bc.cardinality

    def test_result_has_no_singleton_blocks(self):
        bc = BlockCollection()
        for e in ("a", "b", "c"):
            bc.add("big", e)
        bc.add("tiny", "a")
        filtered = block_filtering(bc, ratio=0.5)
        assert all(b.size >= 2 for b in filtered)


class TestEdgePruning:
    def test_graph_edge_count(self):
        bc = BlockCollection()
        bc.add("k", "a")
        bc.add("k", "b")
        bc.add("k", "c")
        graph = BlockingGraph(bc)
        assert len(graph) == 3  # ab, ac, bc

    def test_cbs_weight_counts_shared_blocks(self):
        bc = BlockCollection()
        for key in ("k1", "k2"):
            bc.add(key, "a")
            bc.add(key, "b")
        graph = BlockingGraph(bc, scheme=WeightingScheme.CBS)
        assert graph.weight("a", "b") == 2.0

    def test_js_weight(self):
        bc = BlockCollection()
        bc.add("k1", "a"); bc.add("k1", "b")
        bc.add("k2", "a")
        graph = BlockingGraph(bc, scheme=WeightingScheme.JS)
        # a in 2 blocks, b in 1, shared 1 → 1 / (2 + 1 - 1)
        assert graph.weight("a", "b") == pytest.approx(0.5)

    def test_arcs_favours_small_blocks(self):
        bc = BlockCollection()
        bc.add("small", "a"); bc.add("small", "b")
        for e in ("a", "c", "d", "e"):
            bc.add("large", e)
        graph = BlockingGraph(bc, scheme=WeightingScheme.ARCS)
        assert graph.weight("a", "b") > graph.weight("a", "c")

    def test_pruning_keeps_heavy_edges(self):
        bc = BlockCollection()
        for key in ("k1", "k2", "k3"):
            bc.add(key, "a")
            bc.add(key, "b")
        bc.add("k4", "a")
        bc.add("k4", "c")
        kept = edge_pruning(bc, scheme=WeightingScheme.CBS)
        assert ("a", "b") in kept
        assert ("a", "c") not in kept

    def test_pairs_to_blocks_roundtrip(self):
        blocks = pairs_to_blocks({("a", "b"), ("c", "d")})
        assert blocks.cardinality == 2
        assert blocks.comparison_pairs() == {("a", "b"), ("c", "d")}

    def test_average_weight_of_empty_graph(self):
        assert BlockingGraph(BlockCollection()).average_weight() == 0.0


class TestMetaBlockingPipeline:
    def test_all_label(self):
        assert MetaBlockingConfig.all().label == "ALL"
        assert MetaBlockingConfig.bp_bf().label == "BP + BF"
        assert MetaBlockingConfig.bp_ep().label == "BP + EP"
        assert MetaBlockingConfig.none().label == "NONE"

    def test_none_config_preserves_pairs(self):
        bc = collection_with_stopword_block()
        out = apply_meta_blocking(bc, MetaBlockingConfig.none())
        assert out.comparison_pairs() == bc.comparison_pairs()

    def test_pipeline_never_increases_comparisons(self):
        bc = collection_with_stopword_block()
        for config in (
            MetaBlockingConfig.all(),
            MetaBlockingConfig.bp_bf(),
            MetaBlockingConfig.bp_ep(),
        ):
            out = apply_meta_blocking(bc, config)
            assert len(out.comparison_pairs()) <= len(bc.comparison_pairs())

    def test_all_is_most_aggressive(self):
        bc = collection_with_stopword_block()
        all_pairs = apply_meta_blocking(bc, MetaBlockingConfig.all()).comparison_pairs()
        bpbf_pairs = apply_meta_blocking(bc, MetaBlockingConfig.bp_bf()).comparison_pairs()
        assert len(all_pairs) <= len(bpbf_pairs)
