"""Unit tests for expression compilation and evaluation."""

import pytest

from repro.sql import ast
from repro.sql.expressions import (
    ExpressionError,
    compile_expression,
    compile_predicate,
    conjoin,
    conjuncts,
    referenced_bindings,
    string_literals,
)
from repro.sql.logical import Field, PlanSchema
from repro.sql.parser import parse


SCHEMA = PlanSchema([Field("t", "id"), Field("t", "name"), Field("t", "age"), Field("u", "name")])


def evaluate(sql_condition: str, row: tuple, schema: PlanSchema = SCHEMA):
    query = parse(f"SELECT x FROM t WHERE {sql_condition}")
    return compile_expression(query.where, schema)(row)


class TestColumnResolution:
    def test_qualified(self):
        expr = ast.ColumnRef("name", "u")
        assert compile_expression(expr, SCHEMA)((1, "a", 2, "b")) == "b"

    def test_unqualified_unique(self):
        expr = ast.ColumnRef("age")
        assert compile_expression(expr, SCHEMA)((1, "a", 30, "b")) == 30

    def test_ambiguous_raises(self):
        from repro.sql.logical import SchemaResolutionError

        with pytest.raises(SchemaResolutionError):
            compile_expression(ast.ColumnRef("name"), SCHEMA)

    def test_unknown_raises(self):
        from repro.sql.logical import SchemaResolutionError

        with pytest.raises(SchemaResolutionError):
            compile_expression(ast.ColumnRef("zzz"), SCHEMA)


class TestComparisons:
    def test_equality(self):
        assert evaluate("t.id = 5", (5, "a", 1, "b")) is True

    def test_null_comparisons_false(self):
        assert evaluate("t.name = 'a'", (1, None, 2, "b")) is False
        assert evaluate("t.name <> 'a'", (1, None, 2, "b")) is False

    def test_mixed_numeric_string(self):
        assert evaluate("t.age > 18", (1, "a", "25", "b")) is True

    def test_unparseable_mixed_comparison_false(self):
        assert evaluate("t.age > 18", (1, "a", "dunno", "b")) is False

    def test_inequalities(self):
        assert evaluate("t.age <= 30", (1, "a", 30, "b")) is True
        assert evaluate("t.age < 30", (1, "a", 30, "b")) is False


class TestBooleanLogic:
    def test_and_or(self):
        assert evaluate("t.id = 1 AND t.age = 2", (1, "x", 2, "y")) is True
        assert evaluate("t.id = 9 OR t.age = 2", (1, "x", 2, "y")) is True

    def test_not(self):
        assert evaluate("NOT t.id = 1", (1, "x", 2, "y")) is False

    def test_in_list_case_insensitive_strings(self):
        assert evaluate("t.name IN ('ANN', 'bob')", (1, "ann", 2, "y")) is True

    def test_not_in(self):
        assert evaluate("t.name NOT IN ('x')", (1, "ann", 2, "y")) is True

    def test_in_with_null_operand_false(self):
        assert evaluate("t.name IN ('ann')", (1, None, 2, "y")) is False

    def test_like(self):
        assert evaluate("t.name LIKE 'an%'", (1, "Anna", 2, "y")) is True
        assert evaluate("t.name LIKE 'a_n'", (1, "ann", 2, "y")) is True
        assert evaluate("t.name NOT LIKE 'b%'", (1, "ann", 2, "y")) is True

    def test_between(self):
        assert evaluate("t.age BETWEEN 10 AND 20", (1, "a", 15, "b")) is True
        assert evaluate("t.age NOT BETWEEN 10 AND 20", (1, "a", 25, "b")) is True

    def test_is_null(self):
        assert evaluate("t.name IS NULL", (1, None, 2, "b")) is True
        assert evaluate("t.name IS NOT NULL", (1, None, 2, "b")) is False


class TestArithmeticAndFunctions:
    def test_arithmetic(self):
        assert evaluate("t.age + 5 = 10", (1, "a", 5, "b")) is True
        assert evaluate("t.age * 2 = 10", (1, "a", 5, "b")) is True

    def test_division_by_zero_yields_null(self):
        assert evaluate("t.age / 0 = 1", (1, "a", 5, "b")) is False

    def test_mod_function(self):
        assert evaluate("MOD(t.id, 10) < 1", (20, "a", 5, "b")) is True
        assert evaluate("MOD(t.id, 10) < 1", (21, "a", 5, "b")) is False

    def test_mod_on_non_numeric_yields_null(self):
        assert evaluate("MOD(t.name, 10) < 1", (1, "abc", 5, "b")) is False

    def test_lower_upper_length(self):
        assert evaluate("LOWER(t.name) = 'ann'", (1, "ANN", 5, "b")) is True
        assert evaluate("UPPER(t.name) = 'ANN'", (1, "ann", 5, "b")) is True
        assert evaluate("LENGTH(t.name) = 3", (1, "ann", 5, "b")) is True

    def test_coalesce(self):
        assert evaluate("COALESCE(t.name, 'dflt') = 'dflt'", (1, None, 5, "b")) is True

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("NOSUCH(t.id) = 1", (1, "a", 2, "b"))

    def test_mod_arity_checked(self):
        with pytest.raises(ExpressionError):
            evaluate("MOD(t.id) = 1", (1, "a", 2, "b"))


class TestPredicateHelpers:
    def test_compile_predicate_none_is_true(self):
        assert compile_predicate(None, SCHEMA)((1, 2, 3, 4)) is True

    def test_conjuncts_flattens_nested_and(self):
        q = parse("SELECT x FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(conjuncts(q.where)) == 3

    def test_conjuncts_keeps_or_whole(self):
        q = parse("SELECT x FROM t WHERE a = 1 OR b = 2")
        assert len(conjuncts(q.where)) == 1

    def test_conjoin_roundtrip(self):
        q = parse("SELECT x FROM t WHERE a = 1 AND b = 2")
        parts = conjuncts(q.where)
        assert conjuncts(conjoin(parts)) == parts

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_referenced_bindings(self):
        q = parse("SELECT x FROM t WHERE t.a = 1 AND u.b = 2 AND c = 3")
        assert referenced_bindings(q.where) == {"t", "u", ""}

    def test_string_literals_collects_from_all_shapes(self):
        q = parse(
            "SELECT x FROM t WHERE a = 'alpha' AND b IN ('beta', 'gamma') AND c LIKE '%delta%'"
        )
        found = string_literals(q.where)
        assert {"alpha", "beta", "gamma", "%delta%"} <= set(found)
