"""Unit tests for the relational planner and volcano operators."""

import pytest

from repro.sql.executor import execute_plan
from repro.sql.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
)
from repro.sql.parser import parse
from repro.sql.physical import ExecutionContext, HashJoinOp, NestedLoopJoinOp
from repro.sql.planner import PlanningError, RelationalPlanner
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Table(
            "emp",
            Schema([Column("id", ColumnType.INTEGER), Column("name"), Column("dept")]),
            [(1, "ann", "d1"), (2, "bob", "d2"), (3, "cyd", "d1"), (4, "dee", None)],
        )
    )
    cat.register(
        Table(
            "dept",
            Schema.of("id", "label"),
            [("d1", "engineering"), ("d2", "sales")],
        )
    )
    return cat


@pytest.fixture
def planner(catalog):
    return RelationalPlanner(catalog)


def run(planner, sql):
    plan = planner.logical_plan(parse(sql))
    return execute_plan(planner.physical_plan(plan))


class TestLogicalPlanning:
    def test_filter_pushed_below_join(self, planner):
        plan = planner.logical_plan(
            parse("SELECT name FROM emp JOIN dept ON emp.dept = dept.id WHERE emp.name = 'ann'")
        )
        join = plan.child  # Project → Join
        assert isinstance(join, LogicalJoin)
        assert isinstance(join.left, LogicalFilter)
        assert isinstance(join.left.child, LogicalScan)

    def test_cross_table_conjunct_stays_above_join(self, planner):
        plan = planner.logical_plan(
            parse(
                "SELECT name FROM emp JOIN dept ON emp.dept = dept.id "
                "WHERE emp.name = dept.label"
            )
        )
        assert isinstance(plan.child, LogicalFilter)  # residual above join

    def test_duplicate_binding_rejected(self, planner):
        with pytest.raises(PlanningError):
            planner.logical_plan(parse("SELECT a FROM emp JOIN emp ON emp.id = emp.id"))

    def test_unknown_alias_in_where_rejected(self, planner):
        with pytest.raises(PlanningError):
            planner.logical_plan(parse("SELECT name FROM emp WHERE zz.name = 'x'"))

    def test_ambiguous_unqualified_column_rejected(self, planner):
        with pytest.raises(PlanningError):
            planner.logical_plan(
                parse("SELECT name FROM emp JOIN dept ON emp.dept = dept.id WHERE id = 1")
            )

    def test_star_expansion(self, planner):
        plan = planner.logical_plan(parse("SELECT * FROM emp"))
        assert isinstance(plan, LogicalProject)
        assert [f.name for f in plan.schema] == ["id", "name", "dept"]

    def test_qualified_star_unknown_alias_rejected(self, planner):
        with pytest.raises(PlanningError):
            planner.logical_plan(parse("SELECT zz.* FROM emp"))

    def test_pretty_renders_tree(self, planner):
        plan = planner.logical_plan(parse("SELECT name FROM emp WHERE id = 1"))
        text = plan.pretty()
        assert "Project" in text and "Filter" in text and "TableScan" in text


class TestExecution:
    def test_scan_project(self, planner):
        result = run(planner, "SELECT name FROM emp")
        assert result.column("name") == ["ann", "bob", "cyd", "dee"]

    def test_filter(self, planner):
        result = run(planner, "SELECT id FROM emp WHERE dept = 'd1'")
        assert result.column("id") == [1, 3]

    def test_hash_join(self, planner):
        result = run(
            planner,
            "SELECT emp.name, dept.label FROM emp JOIN dept ON emp.dept = dept.id",
        )
        assert sorted(result.rows) == [
            ("ann", "engineering"),
            ("bob", "sales"),
            ("cyd", "engineering"),
        ]

    def test_join_skips_null_keys(self, planner):
        result = run(
            planner, "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.id"
        )
        assert "dee" not in result.column("name")

    def test_join_is_case_insensitive_on_strings(self, planner, catalog):
        catalog.register(
            Table("updept", Schema.of("id", "label"), [("D1", "X")]), replace=False
        )
        result = run(
            planner, "SELECT emp.name FROM emp JOIN updept ON emp.dept = updept.id"
        )
        assert result.column("name") == ["ann", "cyd"]

    def test_order_by_desc(self, planner):
        result = run(planner, "SELECT name FROM emp ORDER BY name DESC")
        assert result.column("name") == ["dee", "cyd", "bob", "ann"]

    def test_order_by_nulls_first_ascending(self, planner):
        result = run(planner, "SELECT dept FROM emp ORDER BY dept")
        assert result.column("dept")[0] is None

    def test_limit(self, planner):
        assert len(run(planner, "SELECT id FROM emp LIMIT 2")) == 2

    def test_limit_zero(self, planner):
        assert len(run(planner, "SELECT id FROM emp LIMIT 0")) == 0

    def test_distinct(self, planner):
        result = run(planner, "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL")
        assert sorted(result.rows) == [("d1",), ("d2",)]

    def test_expression_projection(self, planner):
        result = run(planner, "SELECT id * 2 AS double FROM emp WHERE id = 2")
        assert result.rows == [(4,)]

    def test_as_dicts(self, planner):
        result = run(planner, "SELECT id, name FROM emp LIMIT 1")
        assert result.as_dicts() == [{"id": 1, "name": "ann"}]

    def test_unknown_output_column_raises(self, planner):
        result = run(planner, "SELECT id FROM emp")
        with pytest.raises(KeyError):
            result.column("nope")


class TestOperators:
    def test_nested_loop_join_for_non_equi(self, planner):
        plan = planner.logical_plan(
            parse("SELECT emp.name FROM emp JOIN dept ON emp.id > dept.label")
        )
        physical = planner.physical_plan(plan)
        labels = physical.pretty()
        assert "NestedLoopJoin" in labels

    def test_execution_context_timers(self):
        context = ExecutionContext()
        with context.timed("stage"):
            pass
        assert "stage" in context.stage_times

    def test_context_accumulates(self):
        context = ExecutionContext()
        context.add_time("s", 1.0)
        context.add_time("s", 0.5)
        assert context.stage_times["s"] == 1.5
