"""Shared fixtures: the paper's motivating example and small dirty data."""

from __future__ import annotations

import pytest

from repro.datagen import generate_organizations, generate_people
from repro.storage.schema import Schema
from repro.storage.table import Table


@pytest.fixture(scope="session")
def publications() -> Table:
    """Table 1 of the paper (publications P), verbatim."""
    return Table(
        "P",
        Schema.of("id", "title", "author", "venue", "year"),
        [
            ("P1", "Collective Entity Resolution", None, "EDBT", "2008"),
            ("P2", "Collective E.R.", "Allan Blake",
             "International Conference on Extending Database Technology", "2008"),
            ("P3", "Entity Resolution on Big Data", "Jane Davids, John Doe", "ACM Sigmod", "2017"),
            ("P4", "E.R on Big Data", "J. Davids, J. Doe", "Sigmod", None),
            ("P5", "Entity Resolution on Big Data", "J. Davids, John Doe.", "Proc of ACM SIGMOD", "2017"),
            ("P6", "E.R for consumer data", "Allan Blake, Lisa Davidson", "EDBT", "2015"),
            ("P7", "Entity-Resolution for consumer data", "A. Blake, L. Davidson",
             "International Conference on Extending Database Technology", None),
            ("P8", "Entity-Resolution for consumer data", "Allan Blake , Davidson Lisa", "EDBT", "2015"),
        ],
    )


@pytest.fixture(scope="session")
def venues() -> Table:
    """Table 2 of the paper (venues V), verbatim."""
    return Table(
        "V",
        Schema.of("id", "title", "description", "rank", "frequency", "est"),
        [
            ("V1", "International Conference on Extending Database Technology",
             "Extending Database Technology", "1", "annual", "1984"),
            ("V2", "SIGMOD", "ACM SIGMOD Conference", "1", None, "1975"),
            ("V3", "ACM SIGMOD", None, "1", "annual", "1975"),
            ("V4", "EDBT", "International Conference on Extending Database Technology",
             None, "yearly", None),
            ("V5", "CIDR", "Conference on Innovative Data Systems Research", None, "biennial", "2002"),
            ("V6", "Conference on Innovative Data Systems Research", None, "2", "biyearly", "2002"),
        ],
    )


@pytest.fixture(scope="session")
def small_people():
    """A 300-row dirty people table with ground truth (deterministic)."""
    return generate_people(300, seed=123)


@pytest.fixture(scope="session")
def small_orgs():
    """A 120-row dirty organisations table with ground truth."""
    return generate_organizations(120, seed=321)


@pytest.fixture(scope="session")
def people_with_orgs(small_orgs):
    """People referencing org names, for SPJ tests."""
    orgs, _ = small_orgs
    names = [row["name"] for row in orgs]
    return generate_people(300, organisations=names, seed=7)
