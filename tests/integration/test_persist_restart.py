"""End-to-end warm restart: ``repro serve --data-dir`` across process lives.

The CI ``persist-smoke`` job runs this.  Three server generations share
one snapshot directory:

1. **Builder, then crash.** Boots from CSV with ``--data-dir`` (writes
   the base snapshot), answers a query, takes an insert whose delta
   checkpoint dies mid-write (``REPRO_FAULTS=persist.write`` armed past
   the base save), and is then SIGKILLed — the crash-mid-checkpoint
   scenario.  The directory must still hold the complete base snapshot:
   manifest-last ordering means a torn checkpoint is invisible.
2. **Restart after the crash.** Boots from the same directory, reports
   ``/healthz`` ok, and answers the query byte-identically to a fresh
   library-mode engine over the snapshot's rows (the crashed insert
   never reached disk, so it is — correctly — gone).
3. **Graceful cycle.** Takes an insert, waits for the background delta
   checkpoint to land (``/healthz`` epoch map), shuts down cleanly; a
   final generation serves base + delta, byte-identical to loading the
   snapshot in-process.

Hard timeouts everywhere — a wedged server fails fast, not CI.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.persist import read_manifest
from repro.storage.csv_io import read_csv, write_csv

STARTUP_TIMEOUT_S = 30.0
REQUEST_TIMEOUT_S = 20.0
CHECKPOINT_WAIT_S = 20.0

SQL = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state IN ('nsw', 'vic')"

#: The builder's plan: the base snapshot is 3 atomic writes (segment,
#: state, manifest); the 4th write is the insert's delta checkpoint,
#: which dies before its temp file starts.
BUILDER_FAULTS = "persist.write:times=1:after=3"


def _spawn(args, faults=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args, "--port", "0", "--workers", "1"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    for line in process.stdout:
        match = re.search(r"serving on http://([\d.]+):(\d+)", line)
        if match:
            return process, match.group(1), int(match.group(2))
        if time.monotonic() > deadline or process.poll() is not None:
            break
    stderr = process.stderr.read() if process.stderr else ""
    process.kill()
    pytest.fail(f"server never announced its address; stderr:\n{stderr}")


def _stop(process, sig=signal.SIGINT):
    if process.poll() is None:
        process.send_signal(sig)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def _request(host, port, method, path, body=None):
    connection = HTTPConnection(host, port, timeout=REQUEST_TIMEOUT_S)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _canonical(rows):
    return sorted([list(map(str, row)) for row in rows])


def _wait_for_checkpoint(host, port, epoch):
    deadline = time.monotonic() + CHECKPOINT_WAIT_S
    while time.monotonic() < deadline:
        status, health = _request(host, port, "GET", "/healthz")
        if status == 200 and health.get("persist", {}).get(
            "snapshot_epoch_map", {}
        ).get("ppl") == epoch:
            return health
        time.sleep(0.2)
    pytest.fail(f"background checkpoint never reached epoch {epoch}")


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("persist_restart")
    table, _ = generate_people(430, seed=61, name="PPL")
    csv_path = root / "ppl.csv"
    write_csv(table, csv_path)
    all_rows = [list(row.values) for row in table]
    # The CSV holds 430 rows; the first 430 are the base, the insert
    # batch is generated separately so ids never collide.
    extra_table, _ = generate_people(440, seed=61, name="PPL")
    insert_rows = [list(row.values) for row in extra_table][430:]
    return {"dir": root / "snap", "csv": csv_path, "insert_rows": insert_rows}


@pytest.fixture(scope="module")
def journey(dataset):
    """Run all three server generations once; capture every outcome."""
    outcomes = {}
    data_dir = str(dataset["dir"])

    # -- generation 1: build, checkpoint-crash, SIGKILL ------------------
    process, host, port = _spawn(
        ["--csv", f"PPL={dataset['csv']}", "--data-dir", data_dir],
        faults=BUILDER_FAULTS,
    )
    try:
        status, answer = _request(host, port, "POST", "/query", {"sql": SQL})
        outcomes["gen1_query"] = (status, answer)
        status, inserted = _request(
            host, port, "POST", "/insert",
            {"table": "PPL", "rows": dataset["insert_rows"]},
        )
        outcomes["gen1_insert"] = (status, inserted)
        # The delta checkpoint runs on a background writer; wait until
        # its failure is observable, then crash the process hard.
        deadline = time.monotonic() + CHECKPOINT_WAIT_S
        failures = 0
        while time.monotonic() < deadline and not failures:
            status, metrics = _request(host, port, "GET", "/metrics")
            failures = metrics.get("persist", {}).get("checkpoint_failures", 0)
            time.sleep(0.1)
        outcomes["gen1_checkpoint_failures"] = failures
        status, health = _request(host, port, "GET", "/healthz")
        outcomes["gen1_health"] = health
    finally:
        _stop(process, sig=signal.SIGKILL)

    outcomes["manifest_after_crash"] = read_manifest(dataset["dir"])

    # -- generation 2: restart from the crashed directory ----------------
    process, host, port = _spawn(["--data-dir", data_dir])
    try:
        outcomes["gen2_health"] = _request(host, port, "GET", "/healthz")
        outcomes["gen2_query"] = _request(host, port, "POST", "/query", {"sql": SQL})
        # Re-apply the insert; this time the delta checkpoint lands.
        status, inserted = _request(
            host, port, "POST", "/insert",
            {"table": "PPL", "rows": dataset["insert_rows"]},
        )
        outcomes["gen2_insert"] = (status, inserted)
        _wait_for_checkpoint(host, port, epoch=inserted["epochs"]["ppl"])
        outcomes["manifest_after_delta"] = read_manifest(dataset["dir"])
    finally:
        _stop(process)  # graceful SIGINT

    # -- generation 3: serve base + delta --------------------------------
    process, host, port = _spawn(["--data-dir", data_dir])
    try:
        outcomes["gen3_health"] = _request(host, port, "GET", "/healthz")
        outcomes["gen3_query"] = _request(host, port, "POST", "/query", {"sql": SQL})
    finally:
        _stop(process)
    return outcomes


def test_crash_mid_checkpoint_leaves_base_snapshot_intact(journey):
    assert journey["gen1_query"][0] == 200
    assert journey["gen1_insert"][0] == 200  # the commit itself succeeded
    assert journey["gen1_checkpoint_failures"] >= 1
    manifest = journey["manifest_after_crash"]
    assert manifest is not None, "crash destroyed the manifest"
    entry = manifest["tables"]["ppl"]
    assert [s["kind"] for s in entry["segments"]] == ["base"]
    assert entry["epoch"] == 1  # the failed delta is invisible


def test_restart_after_crash_is_healthy_and_identical(journey, dataset):
    status, health = journey["gen2_health"]
    assert status == 200 and health["status"] == "ok"
    assert health["persist"]["snapshot_epoch_map"] == {"ppl": 1}

    status, answer = journey["gen2_query"]
    assert status == 200
    engine = QueryEREngine(execution=1)
    engine.register(read_csv(dataset["csv"], name="PPL"))
    assert _canonical(answer["rows"]) == _canonical(engine.execute(SQL).rows)


def test_committed_delta_survives_graceful_restart(journey, dataset):
    manifest = journey["manifest_after_delta"]
    entry = manifest["tables"]["ppl"]
    assert "delta" in [s["kind"] for s in entry["segments"]]
    assert entry["epoch"] == 2

    status, health = journey["gen3_health"]
    assert status == 200 and health["status"] == "ok"
    assert health["persist"]["snapshot_epoch_map"] == {"ppl": 2}
    assert health["epochs"] == {"ppl": 2}

    status, answer = journey["gen3_query"]
    assert status == 200
    warm = QueryEREngine.load(dataset["dir"], execution=1)
    assert _canonical(answer["rows"]) == _canonical(warm.execute(SQL).rows)
