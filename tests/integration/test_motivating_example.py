"""Integration: the paper's motivating example (§2, Tables 1–3)."""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import ExecutionMode

SQL = (
    "SELECT DEDUP P.Title, P.Year, V.Rank "
    "FROM P INNER JOIN V ON P.venue = V.title "
    "WHERE P.venue = 'EDBT'"
)


@pytest.fixture
def engine(publications, venues):
    e = QueryEREngine(match_threshold=0.70, sample_stats=False)
    e.register(publications)
    e.register(venues)
    return e


class TestPlainSqlMissesDuplicates:
    def test_plain_query_returns_only_exact_matches(self, engine):
        result = engine.execute(
            "SELECT P.Title, P.Year FROM P "
            "INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'"
        )
        # Only P1, P6, P8 carry the literal venue 'EDBT' (joining V4):
        titles = sorted(result.column("Title"))
        assert titles == [
            "Collective Entity Resolution",
            "E.R for consumer data",
            "Entity-Resolution for consumer data",
        ]


class TestDedupQuery:
    def test_duplicates_are_grouped(self, engine):
        result = engine.execute(SQL)
        titles = result.column("Title")
        # P1 ≡ P2 fuse into rows carrying both title spellings.  (The V1/V4
        # venue pair is too heterogeneous for the generic matcher, so the
        # publication cluster may surface once per unmerged venue cluster.)
        collective = [t for t in titles if "Collective" in t]
        assert 1 <= len(collective) <= 2
        for title in collective:
            assert "Collective E.R." in title
            assert "Collective Entity Resolution" in title

    def test_rank_surfaced_through_duplicate_venue(self, engine):
        # The whole point of the example: P1's plain join reaches only V4
        # (rank NULL); resolving duplicates surfaces rank 1 via V1.
        result = engine.execute(SQL)
        ranks = {
            rank
            for title, rank in zip(result.column("Title"), result.column("Rank"))
            if "Collective" in title
        }
        assert "1" in ranks

    def test_consumer_data_cluster_grouped(self, engine):
        result = engine.execute(SQL)
        consumer = [t for t in result.column("Title") if "consumer" in t]
        assert len(consumer) == 1

    def test_year_fused_from_duplicates(self, engine):
        result = engine.execute(SQL)
        years = {t: y for t, y in zip(result.column("Title"), result.column("Year"))}
        for title, year in years.items():
            if "Collective" in title:
                assert year == "2008"

    def test_fewer_rows_than_plain_query_joins(self, engine):
        plain = engine.execute(
            "SELECT P.Title FROM P INNER JOIN V ON P.venue = V.title WHERE P.venue = 'EDBT'"
        )
        dedup = engine.execute(SQL)
        assert len(dedup) <= len(plain)

    def test_all_modes_agree_with_batch(self, publications, venues):
        from repro.er.meta_blocking import MetaBlockingConfig

        engine = QueryEREngine(
            match_threshold=0.70,
            sample_stats=False,
            meta_blocking=MetaBlockingConfig.none(),
        )
        engine.register(publications)
        engine.register(venues)
        baseline = engine.execute(SQL, ExecutionMode.BATCH).sorted_rows()
        for mode in (ExecutionMode.AES, ExecutionMode.NES, ExecutionMode.NAIVE_SCAN):
            engine.reset_link_indexes()
            assert engine.execute(SQL, mode).sorted_rows() == baseline


class TestPlanShapes:
    def test_aes_explains_a_dirty_join(self, engine):
        text = engine.explain(SQL, ExecutionMode.AES)
        assert "GroupEntities" in text
        assert "Dirty" in text

    def test_aes_estimates_prefer_the_filtered_branch(self, engine):
        plan = engine.plan_for(SQL, ExecutionMode.AES)
        assert set(plan.estimates) == {"P", "V"}
        # The filter on P makes it the cheaper branch to clean first.
        assert plan.clean_first == "P"

    def test_queryer_beats_batch_on_comparisons(self, engine):
        dq = engine.execute(SQL, ExecutionMode.AES)
        engine.reset_link_indexes()
        ba = engine.execute(SQL, ExecutionMode.BATCH)
        assert dq.comparisons < ba.comparisons
