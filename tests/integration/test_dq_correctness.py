"""Integration: the DQ-Correctness requirement (§5 problem statement).

A Dedupe Query over dirty data must return exactly the grouped entities
that the Batch Approach returns, and (DQ Performance) must execute no
more comparisons.  Exact equality is checked with meta-blocking off
(identical candidate pairs); with the default ALL configuration we check
the weaker paper-level guarantee instead: high pair-completeness.
"""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import ExecutionMode
from repro.datagen import generate_people
from repro.datagen.people import state_in_clause
from repro.er.meta_blocking import MetaBlockingConfig


def build_engine(table, **kwargs):
    kwargs.setdefault("sample_stats", False)
    engine = QueryEREngine(**kwargs)
    engine.register(table)
    return engine


@pytest.fixture(scope="module")
def people_table(small_people):
    return small_people[0]


QUERIES = [
    "SELECT DEDUP id, given_name, surname FROM PPL WHERE state = 'nt'",
    "SELECT DEDUP id, surname FROM PPL WHERE state IN ('nt', 'act', 'tas')",
    "SELECT DEDUP id, surname, suburb FROM PPL WHERE MOD(id, 10) < 1",
    "SELECT DEDUP id, given_name FROM PPL WHERE surname LIKE 's%'",
    "SELECT DEDUP id, given_name FROM PPL WHERE id BETWEEN 10 AND 60",
]


class TestExactEquivalenceWithoutMetaBlocking:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_dq_equals_baq(self, people_table, sql):
        config = MetaBlockingConfig.none()
        dq_engine = build_engine(people_table, meta_blocking=config)
        ba_engine = build_engine(people_table, meta_blocking=config)
        dq = dq_engine.execute(sql, ExecutionMode.AES)
        ba = ba_engine.execute(sql, ExecutionMode.BATCH)
        assert dq.sorted_rows() == ba.sorted_rows()

    @pytest.mark.parametrize("sql", QUERIES[:2])
    def test_dq_performance_fewer_comparisons(self, people_table, sql):
        config = MetaBlockingConfig.none()
        dq_engine = build_engine(people_table, meta_blocking=config)
        ba_engine = build_engine(people_table, meta_blocking=config)
        dq = dq_engine.execute(sql, ExecutionMode.AES)
        ba = ba_engine.execute(sql, ExecutionMode.BATCH)
        assert dq.comparisons < ba.comparisons


class TestDefaultConfiguration:
    def test_dq_equals_baq_under_all_metablocking(self, people_table):
        # On febrl-style data the ALL configuration retains all matching
        # pairs (paper: PC ≥ 0.82, here typically 1.0), so results agree.
        sql = QUERIES[1]
        dq = build_engine(people_table).execute(sql, ExecutionMode.AES)
        ba = build_engine(people_table).execute(sql, ExecutionMode.BATCH)
        assert dq.sorted_rows() == ba.sorted_rows()

    def test_found_links_are_true_duplicates(self, small_people):
        table, truth = small_people
        engine = build_engine(table)
        engine.execute(QUERIES[1], ExecutionMode.AES)
        found = set(engine.index_of("PPL").link_index.links)
        assert found, "expected some duplicates in the selection"
        assert found <= truth.pairs()

    def test_high_pair_completeness_for_selection(self, small_people):
        table, truth = small_people
        engine = build_engine(table)
        result = engine.execute(
            "SELECT DEDUP id FROM PPL WHERE state IN ('nsw', 'vic', 'qld')",
            ExecutionMode.AES,
        )
        del result
        li = engine.index_of("PPL").link_index
        resolved = {e for e in table.ids if li.is_resolved(e)}
        relevant_truth = truth.pairs_within(resolved)
        if relevant_truth:
            found = {p for p in li.links if p in relevant_truth}
            assert len(found) / len(relevant_truth) >= 0.82  # paper's floor


class TestModeAgreement:
    def test_nes_and_aes_agree_on_sp(self, people_table):
        sql = QUERIES[0]
        nes = build_engine(people_table).execute(sql, ExecutionMode.NES)
        aes = build_engine(people_table).execute(sql, ExecutionMode.AES)
        assert nes.sorted_rows() == aes.sorted_rows()

    def test_naive_scan_agrees_with_batch(self, people_table):
        config = MetaBlockingConfig.none()
        sql = QUERIES[0]
        naive = build_engine(people_table, meta_blocking=config).execute(
            sql, ExecutionMode.NAIVE_SCAN
        )
        batch = build_engine(people_table, meta_blocking=config).execute(
            sql, ExecutionMode.BATCH
        )
        assert naive.sorted_rows() == batch.sorted_rows()
