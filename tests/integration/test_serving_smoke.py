"""End-to-end smoke test for ``repro serve`` as a real subprocess.

This is the test the CI serving job runs: launch the CLI against a
datagen CSV, fire concurrent queries at the HTTP endpoint, and assert
(a) every served answer is byte-identical to library mode and (b) the
``/metrics`` counters account for the traffic.  Everything is bounded
by hard timeouts so a wedged server fails fast instead of hanging CI.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.storage.csv_io import read_csv, write_csv

STARTUP_TIMEOUT_S = 30.0
REQUEST_TIMEOUT_S = 20.0
CLIENTS = 4
REQUESTS_PER_CLIENT = 5

SQL = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state IN ('nsw', 'vic')"


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    table, _ = generate_people(400, seed=77, name="PPL")
    path = tmp_path_factory.mktemp("serving_smoke") / "ppl.csv"
    write_csv(table, path)
    return path


@pytest.fixture(scope="module")
def server(csv_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--csv",
            f"PPL={csv_path}",
            "--port",
            "0",
            "--workers",
            "1",
            "--quiet",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    url = None
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    try:
        for line in process.stdout:
            match = re.search(r"serving on http://([\d.]+):(\d+)", line)
            if match:
                url = (match.group(1), int(match.group(2)))
                break
            if time.monotonic() > deadline or process.poll() is not None:
                break
        if url is None:
            stderr = process.stderr.read() if process.stderr else ""
            pytest.fail(f"server never announced its address; stderr:\n{stderr}")
        yield url
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def _request(host, port, method, path, body=None):
    connection = HTTPConnection(host, port, timeout=REQUEST_TIMEOUT_S)
    connection.sock = socket.create_connection((host, port), timeout=REQUEST_TIMEOUT_S)
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _canonical(rows):
    return sorted([list(map(str, row)) for row in rows])


def test_served_answers_match_library_mode_under_concurrency(server, csv_path):
    host, port = server

    status, health = _request(host, port, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["epochs"] == {"ppl": 1}

    engine = QueryEREngine(execution=1)
    engine.register(read_csv(csv_path, name="PPL"))
    expected = _canonical(engine.execute(SQL).rows)
    assert expected  # the smoke data must actually produce an answer

    results = []
    errors = []

    def client():
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                status, payload = _request(
                    host, port, "POST", "/query", {"sql": SQL}
                )
                results.append((status, payload))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=REQUEST_TIMEOUT_S * REQUESTS_PER_CLIENT)
    assert time.monotonic() - start < REQUEST_TIMEOUT_S * REQUESTS_PER_CLIENT
    assert not errors
    assert len(results) == CLIENTS * REQUESTS_PER_CLIENT

    for status, payload in results:
        assert status == 200
        assert payload["epochs"] == {"ppl": 1}
        assert _canonical(payload["rows"]) == expected
        assert payload["cache"] in {"hit", "miss", "coalesced"}

    status, metrics = _request(host, port, "GET", "/metrics")
    assert status == 200
    counters = metrics["counters"]
    assert counters["queries_total"] >= CLIENTS * REQUESTS_PER_CLIENT
    served = (
        counters.get("cache_hit", 0)
        + counters.get("cache_miss", 0)
        + counters.get("cache_coalesced", 0)
    )
    assert served >= CLIENTS * REQUESTS_PER_CLIENT
    assert counters.get("cache_miss", 0) >= 1  # someone executed for real
    assert counters.get("cache_hit", 0) >= 1  # and the cache got exercised
    assert metrics["latency"]["total"]["count"] >= 1
    assert metrics["cache"]["size"] >= 1


def test_insert_over_http_advances_epoch_and_answers(server):
    host, port = server
    status, before = _request(host, port, "POST", "/query", {"sql": SQL})
    assert status == 200

    extra_table, _ = generate_people(403, seed=77, name="PPL")
    rows = [list(row.values) for row in extra_table][400:]
    status, inserted = _request(
        host, port, "POST", "/insert", {"table": "PPL", "rows": rows}
    )
    assert status == 200
    assert inserted["inserted"] == 3
    assert inserted["epochs"]["ppl"] == before["epochs"]["ppl"] + 1

    status, after = _request(host, port, "POST", "/query", {"sql": SQL})
    assert status == 200
    assert after["epochs"]["ppl"] == inserted["epochs"]["ppl"]
    assert after["cache"] in {"miss", "coalesced"}  # old epoch's entry is stale


def test_malformed_requests_are_client_errors(server):
    host, port = server
    status, payload = _request(host, port, "POST", "/query", {"sql": "SELECT FROM"})
    assert status == 400
    assert "error" in payload
    status, _ = _request(host, port, "GET", "/nope")
    assert status == 404
