"""Integration: SPJ dedupe queries and progressive cleaning via the LI."""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import ExecutionMode
from repro.er.meta_blocking import MetaBlockingConfig


@pytest.fixture(scope="module")
def spj_engine(people_with_orgs, small_orgs):
    engine = QueryEREngine(sample_stats=False)
    engine.register(people_with_orgs[0])
    engine.register(small_orgs[0])
    return engine


SPJ = (
    "SELECT DEDUP PPL.id, PPL.surname, OAO.name, OAO.country "
    "FROM PPL JOIN OAO ON PPL.organisation = OAO.name "
    "WHERE PPL.state IN ('nt', 'act')"
)


class TestSpjModes:
    def test_spj_executes_in_every_mode(self, spj_engine):
        for mode in ExecutionMode:
            spj_engine.reset_link_indexes()
            result = spj_engine.execute(SPJ, mode)
            assert len(result) > 0
            assert result.columns == ["id", "surname", "name", "country"]

    def test_spj_modes_agree_without_metablocking(self, people_with_orgs, small_orgs):
        engine = QueryEREngine(sample_stats=False, meta_blocking=MetaBlockingConfig.none())
        engine.register(people_with_orgs[0])
        engine.register(small_orgs[0])
        baseline = engine.execute(SPJ, ExecutionMode.BATCH).sorted_rows()
        for mode in (ExecutionMode.AES, ExecutionMode.NES, ExecutionMode.NAIVE_SCAN):
            engine.reset_link_indexes()
            assert engine.execute(SPJ, mode).sorted_rows() == baseline

    def test_aes_comparisons_at_most_nes(self, spj_engine):
        spj_engine.reset_link_indexes()
        aes = spj_engine.execute(SPJ, ExecutionMode.AES)
        spj_engine.reset_link_indexes()
        nes = spj_engine.execute(SPJ, ExecutionMode.NES)
        assert aes.comparisons <= nes.comparisons

    def test_nes_comparisons_at_most_batch(self, people_with_orgs, small_orgs):
        # Guaranteed with meta-blocking off: NES compares a subset of the
        # pairs BA compares.  (Under ALL, thresholds adapt to the smaller
        # query-time block collection, so the counts are not comparable at
        # tiny scale.)
        engine = QueryEREngine(sample_stats=False, meta_blocking=MetaBlockingConfig.none())
        engine.register(people_with_orgs[0])
        engine.register(small_orgs[0])
        nes = engine.execute(SPJ, ExecutionMode.NES)
        engine.reset_link_indexes()
        batch = engine.execute(SPJ, ExecutionMode.BATCH)
        assert nes.comparisons <= batch.comparisons

    def test_residual_predicate_applies_after_join(self, spj_engine):
        spj_engine.reset_link_indexes()
        sql = SPJ + " AND PPL.surname = OAO.name"  # never true on this data
        result = spj_engine.execute(sql, ExecutionMode.AES)
        assert len(result) == 0


class TestJoinSemantics:
    def test_join_reaches_rows_plain_sql_misses(self, spj_engine):
        """Dirty org names still join via their resolved duplicates."""
        spj_engine.reset_link_indexes()
        plain = spj_engine.execute(
            "SELECT PPL.id FROM PPL JOIN OAO ON PPL.organisation = OAO.name"
        )
        spj_engine.reset_link_indexes()
        dedup = spj_engine.execute(
            "SELECT DEDUP PPL.id FROM PPL JOIN OAO ON PPL.organisation = OAO.name",
            ExecutionMode.AES,
        )
        # Every plain-join person appears (possibly grouped) in the dedup
        # result; grouping can only reduce the row count further.
        plain_ids = {str(v) for v in plain.column("id")}
        dedup_ids = set()
        for value in dedup.column("id"):
            dedup_ids.update(str(value).split(" | "))
        assert plain_ids <= dedup_ids


class TestProgressiveCleaning:
    def test_link_index_makes_second_query_cheaper(self, people_with_orgs):
        engine = QueryEREngine(sample_stats=False)
        engine.register(people_with_orgs[0])
        sql = "SELECT DEDUP id, surname FROM PPL WHERE state IN ('nsw', 'vic')"
        first = engine.execute(sql)  # do not reset LI
        second_result = engine.execute(sql)
        assert second_result.comparisons == 0

    def test_overlapping_queries_partial_reuse(self, people_with_orgs):
        engine = QueryEREngine(sample_stats=False)
        engine.register(people_with_orgs[0])
        narrow = engine.execute("SELECT DEDUP id FROM PPL WHERE state = 'nsw'")
        wide = engine.execute("SELECT DEDUP id FROM PPL WHERE state IN ('nsw', 'vic')")
        fresh = QueryEREngine(sample_stats=False)
        fresh.register(people_with_orgs[0])
        cold = fresh.execute("SELECT DEDUP id FROM PPL WHERE state IN ('nsw', 'vic')")
        assert wide.comparisons < cold.comparisons

    def test_without_li_costs_do_not_drop(self, people_with_orgs):
        engine = QueryEREngine(sample_stats=False, use_link_index=False)
        engine.register(people_with_orgs[0])
        sql = "SELECT DEDUP id FROM PPL WHERE state = 'nsw'"
        first = engine.execute(sql)
        second = engine.execute(sql)
        assert second.comparisons == first.comparisons > 0
