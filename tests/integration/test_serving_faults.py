"""End-to-end chaos: ``repro serve`` under ``REPRO_FAULTS``, as a subprocess.

The CI ``chaos-smoke`` job runs this: launch the real CLI server with a
fault plan armed through the environment (the resilience module arms it
at import, no code changes in the server), drive it with the retrying
client, and assert the server (a) answers structured errors instead of
dying, (b) recovers to exact answers once the plan's faults are spent,
and (c) surfaces everything through /healthz and /metrics.  Hard
timeouts everywhere — a wedged server must fail fast, not hang CI.

The fault budget is per-server-process, so one module-scoped fixture
drives all the fault-consuming traffic exactly once and the tests
assert against its captured outcomes.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.core.engine import QueryEREngine
from repro.datagen import generate_people
from repro.serving import GaveUp, RetryingClient
from repro.storage.csv_io import read_csv, write_csv

STARTUP_TIMEOUT_S = 30.0
REQUEST_TIMEOUT_S = 20.0

SQL = "SELECT DEDUP id, given_name, surname FROM PPL WHERE state IN ('nsw', 'vic')"

#: The subprocess's fault plan: the first two query executions crash in
#: the handler, and one ingest batch dies before commit (rolled back).
FAULT_SPEC = "serving.handler:times=2,dml.before_commit:times=1"


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    table, _ = generate_people(400, seed=77, name="PPL")
    path = tmp_path_factory.mktemp("serving_faults") / "ppl.csv"
    write_csv(table, path)
    return path


@pytest.fixture(scope="module")
def server(csv_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env["REPRO_FAULTS"] = FAULT_SPEC
    env["REPRO_FAULTS_SEED"] = "7"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--csv",
            f"PPL={csv_path}",
            "--port",
            "0",
            "--workers",
            "1",
            "--quiet",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    url = None
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    try:
        for line in process.stdout:
            match = re.search(r"serving on http://([\d.]+):(\d+)", line)
            if match:
                url = (match.group(1), int(match.group(2)))
                break
            if time.monotonic() > deadline or process.poll() is not None:
                break
        if url is None:
            stderr = process.stderr.read() if process.stderr else ""
            pytest.fail(f"server never announced its address; stderr:\n{stderr}")
        yield url, process
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


@pytest.fixture(scope="module")
def traffic(server):
    """Drive the whole fault budget once; capture every outcome."""
    (host, port), process = server
    outcomes = {}

    # 1. One-shot probe — consumes handler fault #1, sees a raw 500.
    naive = RetryingClient(host, port, timeout=REQUEST_TIMEOUT_S, max_attempts=1, seed=0)
    try:
        naive.query(SQL)
        outcomes["probe"] = None
    except GaveUp as gave_up:
        outcomes["probe"] = gave_up
    outcomes["alive_after_probe"] = process.poll() is None

    # 2. Retrying read — consumes handler fault #2, then succeeds.
    reader = RetryingClient(
        host, port, timeout=REQUEST_TIMEOUT_S,
        max_attempts=5, base_backoff=0.02, seed=42,
    )
    outcomes["query"] = reader.query(SQL)
    outcomes["query_attempts"] = reader.stats["attempts"]

    # 3. Retrying write — first attempt rolls back (dml.before_commit),
    # the retry commits.
    _, health = reader.get("/healthz")
    outcomes["epoch_before_insert"] = health["epochs"]["ppl"]
    extra_table, _ = generate_people(403, seed=77, name="PPL")
    rows = [list(row.values) for row in extra_table][400:]
    writer = RetryingClient(
        host, port, timeout=REQUEST_TIMEOUT_S,
        max_attempts=5, base_backoff=0.02, seed=9,
    )
    outcomes["insert"] = writer.insert("PPL", rows)
    outcomes["insert_rows"] = len(rows)
    outcomes["insert_attempts"] = writer.stats["attempts"]
    return outcomes


def _request(host, port, method, path, body=None):
    connection = HTTPConnection(host, port, timeout=REQUEST_TIMEOUT_S)
    connection.sock = socket.create_connection((host, port), timeout=REQUEST_TIMEOUT_S)
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _canonical(rows):
    return sorted([list(map(str, row)) for row in rows])


def test_injected_faults_surface_as_structured_500s(traffic):
    probe = traffic["probe"]
    assert probe is not None, "the first query should have hit handler fault #1"
    assert probe.status == 500
    assert probe.payload["error_kind"] == "injected_fault"
    assert traffic["alive_after_probe"]  # the server survived its own fault


def test_retrying_client_recovers_the_exact_answer(traffic, csv_path):
    status, payload = traffic["query"]
    assert status == 200
    assert traffic["query_attempts"] == 2  # handler fault #2, then success

    engine = QueryEREngine(execution=1)
    engine.register(read_csv(csv_path, name="PPL"))
    assert _canonical(payload["rows"]) == _canonical(engine.execute(SQL).rows)


def test_rolled_back_insert_retries_to_exactly_one_batch(traffic):
    status, inserted = traffic["insert"]
    assert status == 200
    assert inserted["inserted"] == traffic["insert_rows"]
    # One commit, not two: the rolled-back attempt advanced no epoch.
    assert inserted["epochs"]["ppl"] == traffic["epoch_before_insert"] + 1
    assert traffic["insert_attempts"] >= 2


def test_degradation_is_surfaced_end_to_end(server, traffic):
    (host, port), _ = server
    status, health = _request(host, port, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"  # alive: degraded, not down
    assert health["degraded"] is True
    assert health["degradation"].get("serving", 0) >= 2
    assert health["degradation"].get("dml", 0) >= 1

    status, metrics = _request(host, port, "GET", "/metrics")
    assert status == 200
    degradation = metrics["degradation"]
    assert degradation["total"] >= 3
    sites = set(degradation["by_site"])
    assert "serving/execution_error" in sites
    assert "dml/rollback" in sites
    assert metrics["counters"].get("execution_errors", 0) >= 2
    assert metrics["counters"].get("insert_errors", 0) >= 1
