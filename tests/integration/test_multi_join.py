"""Integration: three-table DEDUP joins and error handling."""

import pytest

from repro.core.engine import QueryEREngine
from repro.core.planner import DedupPlanningError, ExecutionMode
from repro.datagen import generate_organizations, generate_people, generate_projects
from repro.er.meta_blocking import MetaBlockingConfig


@pytest.fixture(scope="module")
def three_table_engine():
    orgs, _ = generate_organizations(80, seed=41)
    names = [row["name"] for row in orgs]
    people, _ = generate_people(150, organisations=names, seed=42)
    projects, _ = generate_projects(120, organisations=names, seed=43)
    engine = QueryEREngine(sample_stats=False)
    engine.register(people)
    engine.register(orgs)
    engine.register(projects)
    return engine


THREE_WAY = (
    "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
    "FROM PPL "
    "JOIN OAO ON PPL.organisation = OAO.name "
    "JOIN OAP ON OAP.organisation = OAO.name "
    "WHERE PPL.state = 'nsw'"
)


class TestThreeWayJoin:
    def test_executes_and_projects_all_tables(self, three_table_engine):
        result = three_table_engine.execute(THREE_WAY, ExecutionMode.AES)
        assert result.columns == ["surname", "name", "title"]
        assert len(result) > 0

    def test_all_modes_run(self, three_table_engine):
        for mode in ExecutionMode:
            three_table_engine.clear_caches()
            result = three_table_engine.execute(THREE_WAY, mode)
            assert len(result) > 0, mode

    def test_modes_agree_without_metablocking(self):
        orgs, _ = generate_organizations(60, seed=44)
        names = [row["name"] for row in orgs]
        people, _ = generate_people(100, organisations=names, seed=45)
        projects, _ = generate_projects(80, organisations=names, seed=46)
        engine = QueryEREngine(sample_stats=False, meta_blocking=MetaBlockingConfig.none())
        for table in (people, orgs, projects):
            engine.register(table)
        baseline = engine.execute(THREE_WAY, ExecutionMode.BATCH).sorted_rows()
        for mode in (ExecutionMode.AES, ExecutionMode.NES):
            engine.clear_caches()
            assert engine.execute(THREE_WAY, mode).sorted_rows() == baseline

    def test_join_chained_from_first_table(self, three_table_engine):
        # Second join references PPL (the root), not the previous table.
        sql = (
            "SELECT DEDUP PPL.surname, OAO.name, OAP.title "
            "FROM PPL "
            "JOIN OAO ON PPL.organisation = OAO.name "
            "JOIN OAP ON PPL.organisation = OAP.organisation "
            "WHERE PPL.state = 'nt'"
        )
        result = three_table_engine.execute(sql, ExecutionMode.AES)
        assert result.columns == ["surname", "name", "title"]


class TestDedupErrorHandling:
    def test_unknown_table(self, three_table_engine):
        with pytest.raises(KeyError):
            three_table_engine.execute("SELECT DEDUP x FROM NOPE")

    def test_unknown_column_in_projection(self, three_table_engine):
        from repro.sql.logical import SchemaResolutionError

        with pytest.raises(SchemaResolutionError):
            three_table_engine.execute("SELECT DEDUP nosuchcol FROM OAO")

    def test_join_not_referencing_joined_table(self, three_table_engine):
        with pytest.raises(DedupPlanningError):
            three_table_engine.execute(
                "SELECT DEDUP PPL.surname FROM PPL "
                "JOIN OAO ON PPL.organisation = PPL.surname"
            )

    def test_unknown_alias_in_where(self, three_table_engine):
        with pytest.raises(DedupPlanningError):
            three_table_engine.execute(
                "SELECT DEDUP surname FROM PPL WHERE zz.state = 'nt'"
            )

    def test_empty_selection_returns_empty(self, three_table_engine):
        result = three_table_engine.execute(
            "SELECT DEDUP surname FROM PPL WHERE state = 'nonexistent'"
        )
        assert len(result) == 0
        assert result.comparisons == 0


class TestJoinEdgeCases:
    """Satellite: duplicate aliases, ambiguity and forward references
    fail at planning time — on both the DEDUP and relational paths."""

    def test_duplicate_alias_rejected_dedup(self, three_table_engine):
        with pytest.raises(DedupPlanningError, match="duplicate"):
            three_table_engine.execute(
                "SELECT DEDUP T.surname FROM PPL T "
                "JOIN OAO T ON T.organisation = T.name"
            )

    def test_duplicate_alias_rejected_relational(self, three_table_engine):
        from repro.sql.planner import PlanningError

        with pytest.raises(PlanningError, match="duplicate"):
            three_table_engine.execute(
                "SELECT T.surname FROM PPL T JOIN OAO T ON T.organisation = T.name"
            )

    def test_ambiguous_unqualified_projection_three_tables_dedup(self, three_table_engine):
        from repro.sql.logical import SchemaResolutionError

        # 'organisation' lives in both PPL and OAP.
        with pytest.raises(SchemaResolutionError, match="ambiguous"):
            three_table_engine.execute(
                "SELECT DEDUP organisation FROM PPL "
                "JOIN OAO ON PPL.organisation = OAO.name "
                "JOIN OAP ON OAP.organisation = OAO.name"
            )

    def test_ambiguous_unqualified_where_three_tables_dedup(self, three_table_engine):
        with pytest.raises(DedupPlanningError, match="ambiguous"):
            three_table_engine.execute(
                "SELECT DEDUP PPL.surname FROM PPL "
                "JOIN OAO ON PPL.organisation = OAO.name "
                "JOIN OAP ON OAP.organisation = OAO.name "
                "WHERE organisation = 'acme'"
            )

    def test_ambiguous_unqualified_column_three_tables_relational(self, three_table_engine):
        from repro.sql.logical import SchemaResolutionError

        with pytest.raises(SchemaResolutionError, match="ambiguous"):
            three_table_engine.execute(
                "SELECT organisation FROM PPL "
                "JOIN OAO ON PPL.organisation = OAO.name "
                "JOIN OAP ON OAP.organisation = OAO.name"
            )

    def test_forward_reference_join_rejected_dedup(self, three_table_engine):
        # OAO's condition references OAP, which joins later.
        with pytest.raises(DedupPlanningError):
            three_table_engine.execute(
                "SELECT DEDUP PPL.surname FROM PPL "
                "JOIN OAO ON OAO.name = OAP.organisation "
                "JOIN OAP ON PPL.organisation = OAO.name"
            )

    def test_forward_reference_join_rejected_relational(self, three_table_engine):
        from repro.sql.planner import PlanningError

        with pytest.raises(PlanningError, match="before it is joined"):
            three_table_engine.execute(
                "SELECT PPL.surname FROM PPL "
                "JOIN OAO ON OAO.name = OAP.organisation "
                "JOIN OAP ON PPL.organisation = OAO.name"
            )

    def test_unknown_alias_in_join_condition_relational(self, three_table_engine):
        from repro.sql.planner import PlanningError

        with pytest.raises(PlanningError, match="unknown table alias"):
            three_table_engine.execute(
                "SELECT PPL.surname FROM PPL "
                "JOIN OAO ON ZZ.name = PPL.organisation"
            )
