"""Integration: the raw-csv entry point the paper advertises (§1/§3)."""

import pytest

from repro import QueryEREngine, read_csv, write_csv
from repro.datagen import generate_dsd


@pytest.fixture
def csv_engine(tmp_path):
    table, _ = generate_dsd(200, seed=77)
    path = tmp_path / "dsd.csv"
    write_csv(table, path)
    engine = QueryEREngine(sample_stats=False)
    engine.register(read_csv(path, name="DSD", id_column="id"))
    return engine


class TestCsvPipeline:
    def test_dedup_query_over_csv(self, csv_engine):
        result = csv_engine.execute(
            "SELECT DEDUP id, title, venue FROM DSD WHERE venue = 'edbt'"
        )
        assert len(result) > 0
        assert result.comparisons > 0

    def test_grouped_rows_carry_both_venue_spellings(self, csv_engine):
        result = csv_engine.execute(
            "SELECT DEDUP venue FROM DSD WHERE venue = 'edbt'"
        )
        fused = [v for v in result.column("venue") if " | " in str(v)]
        assert fused, "expected at least one acronym/full-name fusion"

    def test_plain_sql_still_works(self, csv_engine):
        result = csv_engine.execute(
            "SELECT title, year FROM DSD WHERE year >= '2010' ORDER BY year LIMIT 3"
        )
        assert len(result) == 3
        assert all(y >= "2010" for y in result.column("year"))


class TestCsvPlainSelect:
    def test_projection(self, csv_engine):
        result = csv_engine.execute("SELECT id, title FROM DSD LIMIT 5")
        assert len(result) == 5
        assert result.columns == ["id", "title"]
